// Assembles and drives a federation-scale deployment (workload/
// scale_scenario.h) on an Fsps: WAN-of-LANs topology, cluster-aligned shard
// pinning for the parallel engine, staggered query arrivals between run
// segments, and a deterministic aggregate result — the figure output of
// bench_scale_federation, byte-diffed in CI to pin engine determinism.
#ifndef THEMIS_FEDERATION_SCALE_FEDERATION_H_
#define THEMIS_FEDERATION_SCALE_FEDERATION_H_

#include <memory>
#include <vector>

#include "federation/fsps.h"
#include "workload/scale_scenario.h"
#include "workload/workloads.h"

namespace themis {

/// Deterministic aggregate outcome of one scale-scenario run. Every field
/// is a pure function of (scenario, FspsOptions) — never of wall-clock or
/// thread interleaving — which is what the determinism tests and the CI
/// byte-diff assert.
struct ScaleRunResult {
  uint64_t tuples_received = 0;
  uint64_t tuples_processed = 0;
  uint64_t tuples_shed = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t events = 0;        ///< engine events executed
  double mean_sic = 0.0;      ///< mean final SIC over queries
  double jain = 0.0;          ///< Jain's index over final SICs
  std::vector<double> final_sics;  ///< per-query, query-id order
};

/// Builds an Fsps for `scenario` on top of `base` options: adds
/// `scenario.options.nodes` nodes with cluster-aligned shard pinning
/// (cluster c -> shard c * shards / clusters, so LAN links never cross
/// shards and the lookahead is the WAN latency), applies the LAN/WAN
/// latencies, and derives node cpu_speed from the scenario's aggregate
/// source rate and overload target. `base.shards` selects the engine.
std::unique_ptr<Fsps> MakeScaleFederation(const ScaleScenario& scenario,
                                          FspsOptions base = {});

/// Deploys the scenario's queries in their arrival waves (running the
/// simulation between waves), runs `measure` more simulated time past the
/// last arrival, and returns the aggregate result. `fsps` must come from
/// MakeScaleFederation for the same scenario and not have run yet.
ScaleRunResult RunScaleScenario(Fsps* fsps, const ScaleScenario& scenario,
                                SimDuration measure = Seconds(15));

/// \brief Deploys a scale scenario's queries one arrival at a time.
///
/// Factored out of RunScaleScenario so the churn runner
/// (federation/churn_federation.h) interleaves arrivals with topology
/// events through the exact same placement logic. The per-cluster
/// round-robin cursor skips crashed nodes, so arrivals during an outage
/// land on the cluster's live members; on a static federation the
/// behaviour is byte-identical to the pre-deployer code path.
class ScaleDeployer {
 public:
  ScaleDeployer(Fsps* fsps, const ScaleScenario& scenario);

  /// Builds, places and deploys one query; call with `spec.arrival <=
  /// fsps->now()`. Returns false when every candidate node of the target
  /// cluster(s) is crashed and the arrival is skipped.
  bool DeployQuery(const ScaleQuerySpec& spec);

  /// Arrivals skipped because no live node could host them.
  uint64_t skipped_arrivals() const { return skipped_arrivals_; }

 private:
  /// Next live node of `cluster` in round-robin order, or kInvalidId when
  /// the whole cluster is down.
  NodeId NextLiveNode(int cluster);

  Fsps* fsps_;
  WorkloadFactory factory_;
  const ScaleScenarioOptions options_;
  std::vector<std::vector<NodeId>> cluster_nodes_;
  std::vector<size_t> cursor_;
  uint64_t skipped_arrivals_ = 0;
};

/// Aggregates the deterministic outcome of a finished run (the tail of
/// RunScaleScenario, reused by the churn runner).
ScaleRunResult CollectScaleResult(Fsps* fsps);

}  // namespace themis

#endif  // THEMIS_FEDERATION_SCALE_FEDERATION_H_
