// The unified control plane of a dynamic federation: every topology
// mutation — node crash/restore, link drift, mid-run node join, elastic
// shard re-balance — is staged on a TopologyPlan and committed by Apply().
// A plan is validated as a whole before anything mutates, so a bad op in
// the middle of a batch does not leave the federation half-churned, and
// multi-op transitions ("add two nodes, wire their LAN links, re-balance")
// read as one declarative unit instead of a call sequence with hidden
// ordering constraints.
//
// The legacy per-call methods (Fsps::CrashNode and friends) are thin shims
// over single-op plans; in-tree callers go through TopologyPlan.
#ifndef THEMIS_FEDERATION_TOPOLOGY_PLAN_H_
#define THEMIS_FEDERATION_TOPOLOGY_PLAN_H_

#include <vector>

#include "common/status.h"
#include "common/time_types.h"
#include "node/node.h"
#include "runtime/ids.h"

namespace themis {

class Fsps;

/// \brief A staged batch of topology mutations against one Fsps.
///
/// Obtained from Fsps::PlanTopology(). Ops accumulate in call order and
/// nothing touches the federation until Apply(), which (1) validates the
/// whole sequence against a scratch copy of the topology state — an op that
/// would fail mid-sequence fails the plan up front — then (2) commits the
/// ops in order. Apply() runs between RunFor calls, i.e. at a run boundary
/// with every shard clock synchronized and the cross-shard inboxes drained,
/// which is the only instant mutation is safe on a sharded engine; derived
/// state (the conservative epoch width) refreshes at the next RunFor.
///
/// One check cannot run ahead of time: the epoch-width feasibility of a
/// Rebalance depends on link edits earlier in this plan and in the
/// network's pending queue. It is checked when the re-balance commits —
/// before the re-balance itself mutates anything — and a failure there
/// stops the plan with the *earlier* ops applied; the returned Status says
/// which op refused.
class TopologyPlan {
 public:
  TopologyPlan(TopologyPlan&&) = default;
  TopologyPlan& operator=(TopologyPlan&&) = default;
  TopologyPlan(const TopologyPlan&) = delete;
  TopologyPlan& operator=(const TopologyPlan&) = delete;

  /// Stages a node failure (see Fsps::CrashNode for semantics).
  TopologyPlan& Crash(NodeId id);
  /// Stages a crashed node's rejoin.
  TopologyPlan& Restore(NodeId id);
  /// Stages a link-latency change ((a, b), both directions; kInvalidId is
  /// the source pseudo-node). Links to nodes added earlier in this plan are
  /// legal: use the reserved id AddNode returned.
  TopologyPlan& SetLinkLatency(NodeId a, NodeId b, SimDuration latency);
  /// Stages a node join and returns the id the node will get — valid for
  /// later ops in this plan (link wiring, group maps) and, after a
  /// successful Apply(), for the federation at large. On a started sharded
  /// engine the join requires FspsOptions::elastic. `shard` may be
  /// Fsps::kAutoShard.
  NodeId AddNode(NodeOptions options, int shard);
  /// Stages an elastic shard re-balance: re-derives the node->shard map
  /// from the current per-node load signal and migrates every entity whose
  /// shard changed. `group_of_node[id]` keeps groups of nodes (e.g. LAN
  /// clusters) on one shard so intra-group links never constrain the epoch;
  /// empty means every node is its own group. Nodes added earlier in this
  /// plan are covered by the map (size = node count at this point in the
  /// plan). Requires FspsOptions::elastic on a sharded engine; a no-op at
  /// one shard.
  TopologyPlan& Rebalance(std::vector<int> group_of_node = {});

  /// Validates the whole plan, then commits it (see class comment). A plan
  /// applies at most once; staging further ops after Apply() is an error.
  Status Apply();

  /// Number of staged ops (observability / tests).
  size_t size() const { return ops_.size(); }

 private:
  friend class Fsps;

  enum class OpKind { kCrash, kRestore, kSetLink, kAddNode, kRebalance };
  struct Op {
    OpKind kind;
    NodeId a = kInvalidId;
    NodeId b = kInvalidId;
    SimDuration latency = 0;
    NodeOptions node_options;
    int shard = 0;
    std::vector<int> group_of_node;
  };

  explicit TopologyPlan(Fsps* fsps);

  Fsps* fsps_;
  std::vector<Op> ops_;
  /// Node count the plan builder has promised so far (existing + staged
  /// adds); AddNode reserves ids from here.
  size_t promised_nodes_;
  bool applied_ = false;
};

}  // namespace themis

#endif  // THEMIS_FEDERATION_TOPOLOGY_PLAN_H_
