#include "federation/placement.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace themis {

namespace {

// Round-robin cursor shared across calls via the rng (deterministic but not
// aligned across queries, so load still spreads).
//
// Distinct-node guarantee: picks proceed in rounds of `pool` — within one
// round every pick lands on a different node (draw, then linear-probe to
// the next free one). The first round alone covers count <= pool, the
// common case; when the query has more fragments than the (live) node set
// has nodes, the used-mask resets and another distinct round begins, so no
// node hosts a second fragment until every node hosts one, a third until
// every node hosts two, and so on. The previous raw-draw wrap-around could
// co-locate fragments while other nodes sat idle — visible once a
// mid-run crash shrinks the live node list callers pass in.
std::vector<size_t> PickDistinct(size_t count, size_t pool,
                                 const std::function<size_t()>& draw) {
  std::vector<size_t> picked;
  std::vector<bool> used(pool, false);
  size_t used_in_round = 0;
  while (picked.size() < count) {
    if (used_in_round == pool) {
      std::fill(used.begin(), used.end(), false);
      used_in_round = 0;
    }
    size_t idx = draw() % pool;
    if (used[idx]) {
      // Linear-probe to the next free node to bound the loop.
      for (size_t step = 0; step < pool; ++step) {
        size_t probe = (idx + step) % pool;
        if (!used[probe]) {
          idx = probe;
          break;
        }
      }
    }
    used[idx] = true;
    ++used_in_round;
    picked.push_back(idx);
  }
  return picked;
}

}  // namespace

std::map<FragmentId, NodeId> PlaceFragments(const QueryGraph& graph,
                                            const std::vector<NodeId>& nodes,
                                            PlacementPolicy policy,
                                            double zipf_s, Rng* rng) {
  std::map<FragmentId, NodeId> placement;
  std::vector<FragmentId> frags = graph.fragment_ids();
  if (nodes.empty() || frags.empty()) return placement;

  std::function<size_t()> draw;
  size_t rr_cursor = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(nodes.size()) - 1));
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      draw = [&rr_cursor, &nodes]() mutable {
        return rr_cursor++ % nodes.size();
      };
      break;
    case PlacementPolicy::kUniformRandom:
      draw = [rng, &nodes] {
        return static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(nodes.size()) - 1));
      };
      break;
    case PlacementPolicy::kZipf:
      draw = [rng, &nodes, zipf_s] {
        return static_cast<size_t>(
            rng->Zipf(static_cast<int64_t>(nodes.size()), zipf_s));
      };
      break;
  }

  std::vector<size_t> idx = PickDistinct(frags.size(), nodes.size(), draw);
  for (size_t i = 0; i < frags.size(); ++i) {
    placement[frags[i]] = nodes[idx[i]];
  }
  return placement;
}

std::string ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kRoundRobin:
      return "round-robin";
    case ReplacementPolicy::kSicAware:
      return "sic-aware";
  }
  return "?";
}

std::string LoadSignalName(LoadSignalKind kind) {
  switch (kind) {
    case LoadSignalKind::kAcceptedSic:
      return "accepted-sic";
    case LoadSignalKind::kArrivalCost:
      return "arrival-cost";
  }
  return "?";
}

std::string CrashStateModeName(CrashStateMode mode) {
  switch (mode) {
    case CrashStateMode::kLegacyShared:
      return "legacy-shared";
    case CrashStateMode::kReset:
      return "reset";
    case CrashStateMode::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

NodeId ChooseLeastLoaded(const std::vector<ReplacementCandidate>& candidates,
                         const std::set<NodeId>& occupied) {
  NodeId best = kInvalidId, best_any = kInvalidId;
  double best_load = 0.0, best_any_load = 0.0;
  for (const ReplacementCandidate& c : candidates) {
    // Strict < with candidates scanned in input order and ids ascending in
    // practice; ties therefore resolve to the smallest id seen first. Feed
    // id-sorted candidates for the documented tie-break.
    if (best_any == kInvalidId || c.load < best_any_load ||
        (c.load == best_any_load && c.id < best_any)) {
      best_any = c.id;
      best_any_load = c.load;
    }
    if (occupied.count(c.id) != 0) continue;
    if (best == kInvalidId || c.load < best_load ||
        (c.load == best_load && c.id < best)) {
      best = c.id;
      best_load = c.load;
    }
  }
  return best != kInvalidId ? best : best_any;
}

}  // namespace themis
