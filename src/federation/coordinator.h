// Logically-centralised per-query coordinator (§6): accumulates the query's
// result SIC over the sliding STW and periodically disseminates the current
// q_SIC value to every node hosting one of the query's fragments — the
// updateSIC(Q) mechanism that makes independent shedding decisions converge
// globally (§5.2, Fig. 4).
#ifndef THEMIS_FEDERATION_COORDINATOR_H_
#define THEMIS_FEDERATION_COORDINATOR_H_

#include <map>
#include <vector>

#include "node/node.h"
#include "runtime/query_graph.h"
#include "sic/stw_tracker.h"
#include "sim/event_queue.h"
#include "sim/network.h"

namespace themis {

/// One recorded result emission (used by the §7.1 correctness experiments).
struct ResultRecord {
  SimTime time = 0;
  double sic = 0.0;
  ValueList values;
};

/// \brief Tracks and disseminates one query's result SIC.
class QueryCoordinator {
 public:
  struct Options {
    SimDuration stw = Seconds(10);
    /// Dissemination period (paper: 250 ms, matching the shedding interval).
    SimDuration update_interval = Millis(250);
    /// Record result tuples for offline correctness comparison. Off by
    /// default: multi-node experiments would hold megabytes of payloads.
    bool record_results = false;
    /// Size of one dissemination message (§7.6 reports 30 bytes).
    size_t update_message_bytes = 30;
    /// Dissemination on/off; off reproduces the Fig. 4 "without
    /// updateSIC(Q)" ablation where nodes shed in isolation.
    bool disseminate = true;
  };

  QueryCoordinator(const QueryGraph* graph, Options options, EventQueue* queue,
                   Network* network);

  /// Registers a node hosting fragments of this query. `home` designates the
  /// node the coordinator is co-located with (the root fragment's node); the
  /// dissemination latency to each host is the network latency from `home`.
  void SetHome(NodeId home) { home_ = home; }
  void AddHost(NodeId node_id, Node* node);
  /// Deregisters a host that no longer runs fragments of this query (node
  /// crash with re-placement): dissemination stops addressing it.
  void RemoveHost(NodeId node_id);
  NodeId home() const { return home_; }

  /// Starts the periodic dissemination timer.
  void Start();

  /// Moves the coordinator to another shard's event queue (elastic
  /// re-balance: the coordinator follows its home node's shard so
  /// dissemination sends and OnResult calls stay shard-local). Only legal
  /// between engine runs. The dissemination chain re-arms on the new queue
  /// at its original deadline; the event left on the old queue is neutered
  /// by a generation bump.
  void MigrateQueue(EventQueue* queue);
  EventQueue* queue() const { return queue_; }

  /// Stops dissemination and ignores further results (query undeployment).
  /// The object must stay alive until pending timer events have fired; Fsps
  /// retires stopped coordinators instead of destroying them.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Result delivery from the root operator's node.
  void OnResult(SimTime now, const std::vector<Tuple>& results);

  /// Current Eq. (4) value over the trailing STW.
  double CurrentSic();

  const QueryGraph* graph() const { return graph_; }
  const std::vector<ResultRecord>& results() const { return results_; }
  uint64_t result_tuples() const { return result_tuples_; }

 private:
  /// `gen` guards against stale events after MigrateQueue: a tick armed
  /// before a migration may fire on the old shard's thread and must return
  /// after the generation check without touching other members.
  void Disseminate(uint64_t gen);
  /// Arms the next dissemination tick at `at` on the current queue.
  void ArmDisseminate(SimTime at);

  const QueryGraph* graph_;
  Options options_;
  EventQueue* queue_;
  Network* network_;
  StwTracker tracker_;
  NodeId home_ = 0;
  std::map<NodeId, Node*> hosts_;
  std::vector<ResultRecord> results_;
  uint64_t result_tuples_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  // Elastic migration state (see Node's counterpart): the generation stamps
  // every armed tick; MigrateQueue bumps it and re-arms at the recorded
  // deadline, preserving the dissemination phase.
  uint64_t generation_ = 0;
  SimTime next_disseminate_at_ = 0;
};

}  // namespace themis

#endif  // THEMIS_FEDERATION_COORDINATOR_H_
