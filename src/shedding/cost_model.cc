#include "shedding/cost_model.h"

#include <algorithm>

namespace themis {

void CostModel::RecordInterval(size_t tuples, SimDuration busy) {
  if (tuples == 0 || busy <= 0) return;
  double per_tuple = static_cast<double>(busy) / static_cast<double>(tuples);
  avg_.Update(per_tuple);
}

double CostModel::PerTupleUs() const {
  if (avg_.size() == 0) return default_cost_us_;
  return std::max(avg_.value(), 1e-6);
}

size_t CostModel::EstimateCapacity(SimDuration interval) const {
  double c = static_cast<double>(interval) / PerTupleUs();
  if (c < 1.0) return 1;
  return static_cast<size_t>(c);
}

}  // namespace themis
