#include "shedding/random_shedder.h"

#include <algorithm>
#include <numeric>

namespace themis {

std::vector<size_t> RandomShedder::SelectBatchesToKeep(
    const std::deque<Batch>& ib, const ShedContext& ctx) {
  std::vector<size_t> order(ib.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(&order);

  std::vector<size_t> keep;
  size_t used = 0;
  for (size_t idx : order) {
    size_t n = ib[idx].size();
    if (used + n > ctx.capacity_tuples) continue;
    used += n;
    keep.push_back(idx);
  }
  std::sort(keep.begin(), keep.end());
  return keep;
}

}  // namespace themis
