#include "shedding/baseline_shedders.h"

#include <algorithm>
#include <map>

namespace themis {

std::vector<size_t> DropNewestShedder::SelectBatchesToKeep(
    const std::deque<Batch>& ib, const ShedContext& ctx) {
  std::vector<size_t> keep;
  size_t used = 0;
  for (size_t i = 0; i < ib.size(); ++i) {
    size_t n = ib[i].size();
    if (used + n > ctx.capacity_tuples) break;
    used += n;
    keep.push_back(i);
  }
  return keep;
}

std::vector<size_t> DropOldestShedder::SelectBatchesToKeep(
    const std::deque<Batch>& ib, const ShedContext& ctx) {
  std::vector<size_t> keep;
  size_t used = 0;
  for (size_t i = ib.size(); i-- > 0;) {
    size_t n = ib[i].size();
    if (used + n > ctx.capacity_tuples) break;
    used += n;
    keep.push_back(i);
  }
  std::sort(keep.begin(), keep.end());
  return keep;
}

std::vector<size_t> ProportionalShedder::SelectBatchesToKeep(
    const std::deque<Batch>& ib, const ShedContext& ctx) {
  size_t total = 0;
  for (const Batch& b : ib) total += b.size();
  if (total == 0) return {};
  double fraction =
      std::min(1.0, static_cast<double>(ctx.capacity_tuples) /
                        static_cast<double>(total));

  // Per query: accept FIFO batches until the query's share is used.
  std::map<QueryId, size_t> query_total, query_used;
  for (const Batch& b : ib) query_total[b.header.query_id] += b.size();

  std::vector<size_t> keep;
  size_t used_overall = 0;
  for (size_t i = 0; i < ib.size(); ++i) {
    const Batch& b = ib[i];
    size_t n = b.size();
    size_t budget = static_cast<size_t>(
        fraction * static_cast<double>(query_total[b.header.query_id]));
    if (query_used[b.header.query_id] + n > budget) continue;
    if (used_overall + n > ctx.capacity_tuples) continue;
    query_used[b.header.query_id] += n;
    used_overall += n;
    keep.push_back(i);
  }
  return keep;
}

}  // namespace themis
