#include "shedding/balance_sic_shedder.h"

#include <algorithm>
#include <limits>
#include <map>

namespace themis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Two projected SIC values within this tolerance count as "equal" for the
// q''_SIC != q'_SIC condition of Alg. 1 line 14.
constexpr double kSicEps = 1e-12;

struct QueryState {
  double projected_sic = 0.0;   // plays the role of q_SIC during the loop
  std::vector<size_t> batches;  // candidate batch indices, best-first
  size_t next = 0;              // cursor into `batches`

  bool Exhausted() const { return next >= batches.size(); }
};

}  // namespace

std::vector<size_t> BalanceSicShedder::SelectBatchesToKeep(
    const std::deque<Batch>& ib, const ShedContext& ctx) {
  if (ib.empty() || ctx.capacity_tuples == 0) return {};

  // Group buffer batches per query and compute the projection baseline.
  std::map<QueryId, QueryState> states;
  for (size_t i = 0; i < ib.size(); ++i) {
    states[ib[i].header.query_id].batches.push_back(i);
  }
  for (auto& [q, st] : states) {
    double disseminated = 0.0;
    if (ctx.query_sic != nullptr) {
      if (auto it = ctx.query_sic->find(q); it != ctx.query_sic->end()) {
        disseminated = it->second;
      }
    }
    if (options_.project_local_shedding) {
      double in_buffer = 0.0;
      for (size_t i : st.batches) in_buffer += ib[i].header.sic;
      st.projected_sic = std::max(0.0, disseminated - in_buffer);
      // Recently accepted mass is in flight through the operators' window
      // cascade: it appears in neither the disseminated result SIC nor the
      // buffer. Using the local accept level as a floor removes the feedback
      // lag that would otherwise cause over-correction oscillations.
      if (ctx.local_accepted_sic != nullptr) {
        if (auto it = ctx.local_accepted_sic->find(q);
            it != ctx.local_accepted_sic->end()) {
          st.projected_sic = std::max(st.projected_sic, it->second);
        }
      }
    } else {
      st.projected_sic = disseminated;
    }
    if (options_.prefer_high_sic) {
      // max(x_SIC): highest-SIC batches first; FIFO order breaks SIC ties.
      std::stable_sort(st.batches.begin(), st.batches.end(),
                       [&ib](size_t a, size_t b) {
                         return ib[a].header.sic > ib[b].header.sic;
                       });
    }

    // Bucket by operator window, order buckets by SIC mass (max(x_SIC) at
    // window granularity), and source-interleave inside each bucket. The
    // flattened list makes the acceptance loop complete one window before
    // starting the next — see BalanceSicOptions::window_group.
    std::map<int64_t, std::vector<size_t>> buckets;
    if (options_.window_group > 0) {
      for (size_t idx : st.batches) {
        buckets[ib[idx].header.created / options_.window_group].push_back(idx);
      }
    } else {
      buckets[0] = st.batches;
    }

    std::vector<std::pair<double, int64_t>> bucket_order;  // (-sic, window)
    for (const auto& [window, idxs] : buckets) {
      double mass = 0.0;
      for (size_t i : idxs) mass += ib[i].header.sic;
      bucket_order.emplace_back(-mass, window);
    }
    std::sort(bucket_order.begin(), bucket_order.end());

    std::vector<size_t> flattened;
    flattened.reserve(st.batches.size());
    for (const auto& [neg_mass, window] : bucket_order) {
      std::vector<size_t>& idxs = buckets[window];
      if (options_.interleave_sources) {
        // Round-robin across sources, preserving per-source order. The
        // starting source rotates randomly: a starved query often gets just
        // one batch per invocation, and a fixed start would feed the same
        // source forever, permanently starving the other input port of a
        // join/covariance operator.
        std::map<SourceId, std::vector<size_t>> per_source;
        for (size_t idx : idxs) {
          per_source[ib[idx].header.source].push_back(idx);
        }
        std::vector<std::vector<size_t>*> lanes;
        lanes.reserve(per_source.size());
        for (auto& [src, v] : per_source) lanes.push_back(&v);
        size_t start = lanes.size() > 1
                           ? static_cast<size_t>(rng_.UniformInt(
                                 0, static_cast<int64_t>(lanes.size()) - 1))
                           : 0;
        size_t emitted = 0;
        for (size_t round = 0; emitted < idxs.size(); ++round) {
          for (size_t l = 0; l < lanes.size(); ++l) {
            const std::vector<size_t>& v = *lanes[(start + l) % lanes.size()];
            if (round < v.size()) {
              flattened.push_back(v[round]);
              ++emitted;
            }
          }
        }
      } else {
        flattened.insert(flattened.end(), idxs.begin(), idxs.end());
      }
    }
    st.batches = std::move(flattened);
  }

  std::vector<size_t> keep;
  size_t remaining = ctx.capacity_tuples;

  // selectTuplesToKeep() main loop. Each iteration raises the minimum query
  // toward the second-lowest distinct SIC level.
  while (remaining > 0) {
    // q' := argmin over queries that still have batches to offer.
    QueryId min_q = kInvalidId;
    double min_sic = kInf;
    int ties = 0;
    for (auto& [q, st] : states) {
      if (st.Exhausted()) continue;
      if (st.projected_sic < min_sic - kSicEps) {
        min_sic = st.projected_sic;
        min_q = q;
        ties = 1;
      } else if (st.projected_sic <= min_sic + kSicEps) {
        // Reservoir-sample among ties so the random pick is uniform.
        ++ties;
        if (rng_.UniformInt(1, ties) == 1) min_q = q;
      }
    }
    if (min_q == kInvalidId) break;  // every query exhausted

    // q'' := next distinct SIC level among ALL queries (exhausted queries
    // still define levels other nodes may be filling toward).
    double target = kInf;
    for (const auto& [q, st] : states) {
      if (q == min_q) continue;
      if (st.projected_sic > min_sic + kSicEps && st.projected_sic < target) {
        target = st.projected_sic;
      }
    }

    // Accept batches from q' until its projection reaches the target level,
    // capacity runs out, or it has nothing left. With target == inf (all
    // queries at the same level) accept a single batch, then re-enter the
    // loop so acceptance rotates randomly across queries (Fig. 3, iter. 5).
    QueryState& st = states[min_q];
    bool accepted_any = false;
    while (!st.Exhausted() && st.projected_sic < target - kSicEps &&
           remaining > 0) {
      size_t idx = st.batches[st.next];
      size_t n = ib[idx].size();
      if (n > remaining) {
        // Alg. 1 line 17: never exceed capacity. Try a smaller batch of the
        // same query before giving up on it.
        bool found = false;
        for (size_t j = st.next + 1; j < st.batches.size(); ++j) {
          if (ib[st.batches[j]].size() <= remaining) {
            std::swap(st.batches[st.next], st.batches[j]);
            found = true;
            break;
          }
        }
        if (!found) {
          st.next = st.batches.size();  // nothing fits; exhaust this query
          break;
        }
        continue;
      }
      keep.push_back(idx);
      st.projected_sic += ib[idx].header.sic;  // local updateSIC(Q)
      remaining -= n;
      ++st.next;
      accepted_any = true;
      if (target == kInf) break;  // tie case: one batch, then re-select
    }
    if (!accepted_any && st.Exhausted()) continue;  // another query may fit
    if (!accepted_any) break;  // capacity cannot fit anything further
  }

  std::sort(keep.begin(), keep.end());
  return keep;
}

}  // namespace themis
