#include "shedding/balance_sic_shedder.h"

#include <algorithm>
#include <limits>

namespace themis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Two projected SIC values within this tolerance count as "equal" for the
// q''_SIC != q'_SIC condition of Alg. 1 line 14.
constexpr double kSicEps = 1e-12;

// Stable insertion sort by descending batch SIC (FIFO order breaks ties).
// Candidate lists are small; this avoids std::stable_sort's per-call buffer
// allocation and — stability being a unique ordering — produces exactly the
// permutation std::stable_sort would.
void SortBySicDesc(std::vector<size_t>* idxs, const std::deque<Batch>& ib) {
  for (size_t i = 1; i < idxs->size(); ++i) {
    size_t idx = (*idxs)[i];
    double sic = ib[idx].header.sic;
    size_t j = i;
    while (j > 0 && ib[(*idxs)[j - 1]].header.sic < sic) {
      (*idxs)[j] = (*idxs)[j - 1];
      --j;
    }
    (*idxs)[j] = idx;
  }
}

}  // namespace

// Performance note: this runs every shedding interval over the whole input
// buffer and dominated profiles as a std::map-based implementation. The flat
// scratch vectors keep the original ascending-query iteration order (and
// thus the exact RNG call sequence and shedding decisions) while staying
// cache-friendly and allocation-free in steady state.
std::vector<size_t> BalanceSicShedder::SelectBatchesToKeep(
    const std::deque<Batch>& ib, const ShedContext& ctx) {
  if (ib.empty() || ctx.capacity_tuples == 0) return {};

  // Group buffer batches per query and compute the projection baseline.
  // `states_` ends up sorted by query id, matching a map's iteration order.
  size_t states_used = 0;
  ++generation_;
  for (size_t i = 0; i < ib.size(); ++i) {
    QueryId q = ib[i].header.query_id;
    if (static_cast<size_t>(q) >= state_index_.size()) {
      state_index_.resize(q + 1);
    }
    IndexSlot& idx = state_index_[q];
    if (idx.generation != generation_) {
      idx.generation = generation_;
      idx.slot = static_cast<uint32_t>(states_used);
      if (states_used == states_.size()) states_.emplace_back();
      QueryState& st = states_[states_used];
      st.query = q;
      st.projected_sic = 0.0;
      st.batches.clear();
      st.next = 0;
      ++states_used;
    }
    states_[idx.slot].batches.push_back(i);
  }
  std::sort(states_.begin(), states_.begin() + states_used,
            [](const QueryState& a, const QueryState& b) {
              return a.query < b.query;
            });
  auto states_begin = states_.begin();
  auto states_end = states_.begin() + states_used;

  for (auto st_it = states_begin; st_it != states_end; ++st_it) {
    QueryState& st = *st_it;
    const QueryId q = st.query;
    double disseminated = 0.0;
    if (ctx.query_sic != nullptr) {
      if (auto it = ctx.query_sic->find(q); it != ctx.query_sic->end()) {
        disseminated = it->second;
      }
    }
    if (options_.project_local_shedding) {
      double in_buffer = 0.0;
      for (size_t i : st.batches) in_buffer += ib[i].header.sic;
      st.projected_sic = std::max(0.0, disseminated - in_buffer);
      // Recently accepted mass is in flight through the operators' window
      // cascade: it appears in neither the disseminated result SIC nor the
      // buffer. Using the local accept level as a floor removes the feedback
      // lag that would otherwise cause over-correction oscillations.
      if (ctx.local_accepted_sic != nullptr &&
          static_cast<size_t>(q) < ctx.local_accepted_sic->size()) {
        st.projected_sic =
            std::max(st.projected_sic, (*ctx.local_accepted_sic)[q]);
      }
    } else {
      st.projected_sic = disseminated;
    }
    if (options_.prefer_high_sic) {
      // max(x_SIC): highest-SIC batches first; FIFO order breaks SIC ties.
      SortBySicDesc(&st.batches, ib);
    }

    // Bucket by operator window, order buckets by SIC mass (max(x_SIC) at
    // window granularity), and source-interleave inside each bucket. The
    // flattened list makes the acceptance loop complete one window before
    // starting the next — see BalanceSicOptions::window_group. Buckets are
    // few (the buffer spans a couple of windows), so linear find beats a
    // map.
    buckets_used_ = 0;
    auto bucket_for = [this](int64_t window) -> std::vector<size_t>& {
      for (size_t b = 0; b < buckets_used_; ++b) {
        if (buckets_[b].first == window) return buckets_[b].second;
      }
      if (buckets_used_ == buckets_.size()) buckets_.emplace_back();
      buckets_[buckets_used_].first = window;
      buckets_[buckets_used_].second.clear();
      return buckets_[buckets_used_++].second;
    };
    if (options_.window_group > 0) {
      for (size_t idx : st.batches) {
        bucket_for(ib[idx].header.created / options_.window_group)
            .push_back(idx);
      }
    } else {
      bucket_for(0) = st.batches;
    }

    bucket_order_.clear();  // (-sic, window)
    for (size_t b = 0; b < buckets_used_; ++b) {
      double mass = 0.0;
      for (size_t i : buckets_[b].second) mass += ib[i].header.sic;
      bucket_order_.emplace_back(-mass, buckets_[b].first);
    }
    // Windows are distinct, so the (-mass, window) order is total and
    // independent of bucket build order.
    std::sort(bucket_order_.begin(), bucket_order_.end());

    flattened_.clear();
    flattened_.reserve(st.batches.size());
    for (const auto& [neg_mass, window] : bucket_order_) {
      std::vector<size_t>& idxs = bucket_for(window);
      if (options_.interleave_sources) {
        // Round-robin across sources, preserving per-source order. The
        // starting source rotates randomly: a starved query often gets just
        // one batch per invocation, and a fixed start would feed the same
        // source forever, permanently starving the other input port of a
        // join/covariance operator.
        per_source_used_ = 0;
        for (size_t idx : idxs) {
          SourceId src = ib[idx].header.source;
          std::vector<size_t>* lane = nullptr;
          for (size_t s = 0; s < per_source_used_; ++s) {
            if (per_source_[s].first == src) {
              lane = &per_source_[s].second;
              break;
            }
          }
          if (lane == nullptr) {
            if (per_source_used_ == per_source_.size()) {
              per_source_.emplace_back();
            }
            per_source_[per_source_used_].first = src;
            per_source_[per_source_used_].second.clear();
            lane = &per_source_[per_source_used_++].second;
          }
          lane->push_back(idx);
        }
        // Ascending source order, as a std::map would iterate.
        std::sort(per_source_.begin(), per_source_.begin() + per_source_used_,
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        size_t lanes = per_source_used_;
        size_t start = lanes > 1
                           ? static_cast<size_t>(rng_.UniformInt(
                                 0, static_cast<int64_t>(lanes) - 1))
                           : 0;
        size_t emitted = 0;
        for (size_t round = 0; emitted < idxs.size(); ++round) {
          for (size_t l = 0; l < lanes; ++l) {
            const std::vector<size_t>& v =
                per_source_[(start + l) % lanes].second;
            if (round < v.size()) {
              flattened_.push_back(v[round]);
              ++emitted;
            }
          }
        }
      } else {
        flattened_.insert(flattened_.end(), idxs.begin(), idxs.end());
      }
    }
    st.batches.assign(flattened_.begin(), flattened_.end());
  }

  std::vector<size_t> keep;
  size_t remaining = ctx.capacity_tuples;

  // Sorted copy of every state's projected SIC, maintained as projections
  // rise. The q'' level query below becomes an upper_bound; the linear
  // argmin scan stays (its tie-breaking consumes RNG draws per candidate,
  // so it cannot be skipped without changing decisions).
  sorted_sic_.clear();
  for (auto st_it = states_begin; st_it != states_end; ++st_it) {
    sorted_sic_.push_back(st_it->projected_sic);
  }
  std::sort(sorted_sic_.begin(), sorted_sic_.end());

  // selectTuplesToKeep() main loop. Each iteration raises the minimum query
  // toward the second-lowest distinct SIC level.
  while (remaining > 0) {
    // q' := argmin over queries that still have batches to offer.
    QueryState* min_st = nullptr;
    double min_sic = kInf;
    int ties = 0;
    for (auto st_it = states_begin; st_it != states_end; ++st_it) {
      QueryState& cand = *st_it;
      if (cand.Exhausted()) continue;
      if (cand.projected_sic < min_sic - kSicEps) {
        min_sic = cand.projected_sic;
        min_st = &cand;
        ties = 1;
      } else if (cand.projected_sic <= min_sic + kSicEps) {
        // Reservoir-sample among ties so the random pick is uniform.
        ++ties;
        if (rng_.UniformInt(1, ties) == 1) min_st = &cand;
      }
    }
    if (min_st == nullptr) break;  // every query exhausted

    // q'' := next distinct SIC level among ALL queries (exhausted queries
    // still define levels other nodes may be filling toward). min_st's own
    // level is <= min_sic + eps, so the bound can never return it.
    auto above = std::upper_bound(sorted_sic_.begin(), sorted_sic_.end(),
                                  min_sic + kSicEps);
    double target = above != sorted_sic_.end() ? *above : kInf;

    // Accept batches from q' until its projection reaches the target level,
    // capacity runs out, or it has nothing left. With target == inf (all
    // queries at the same level) accept a single batch, then re-enter the
    // loop so acceptance rotates randomly across queries (Fig. 3, iter. 5).
    QueryState& st = *min_st;
    const double level_before = st.projected_sic;
    bool accepted_any = false;
    while (!st.Exhausted() && st.projected_sic < target - kSicEps &&
           remaining > 0) {
      size_t idx = st.batches[st.next];
      size_t n = ib[idx].size();
      if (n > remaining) {
        // Alg. 1 line 17: never exceed capacity. Try a smaller batch of the
        // same query before giving up on it.
        bool found = false;
        for (size_t j = st.next + 1; j < st.batches.size(); ++j) {
          if (ib[st.batches[j]].size() <= remaining) {
            std::swap(st.batches[st.next], st.batches[j]);
            found = true;
            break;
          }
        }
        if (!found) {
          st.next = st.batches.size();  // nothing fits; exhaust this query
          break;
        }
        continue;
      }
      keep.push_back(idx);
      st.projected_sic += ib[idx].header.sic;  // local updateSIC(Q)
      remaining -= n;
      ++st.next;
      accepted_any = true;
      if (target == kInf) break;  // tie case: one batch, then re-select
    }
    if (st.projected_sic != level_before) {
      // Re-sort st's level: drop one instance of the old value, insert the
      // new one at its ordered position.
      auto old_it = std::lower_bound(sorted_sic_.begin(), sorted_sic_.end(),
                                     level_before);
      sorted_sic_.erase(old_it);
      auto new_it = std::lower_bound(sorted_sic_.begin(), sorted_sic_.end(),
                                     st.projected_sic);
      sorted_sic_.insert(new_it, st.projected_sic);
    }
    if (!accepted_any && st.Exhausted()) continue;  // another query may fit
    if (!accepted_any) break;  // capacity cannot fit anything further
  }

  std::sort(keep.begin(), keep.end());
  return keep;
}

}  // namespace themis
