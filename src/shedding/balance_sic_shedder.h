// BALANCE-SIC fair shedding — Algorithm 1 of §5, with the practical
// refinements of §6:
//   * batch granularity (batches are the shedding unit),
//   * local SIC projection: the shedder starts from the disseminated result
//     SIC minus the SIC mass sitting in the input buffer ("assume everything
//     is discarded"), then adds batches back as it accepts them,
//   * max(x_SIC) selection: within a query, the highest-SIC batches are
//     accepted first so capacity buys the most valuable tuples.
#ifndef THEMIS_SHEDDING_BALANCE_SIC_SHEDDER_H_
#define THEMIS_SHEDDING_BALANCE_SIC_SHEDDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "shedding/shedder.h"

namespace themis {

/// Tuning knobs; defaults reproduce the paper, the alternatives exist for the
/// ablation benches called out in DESIGN.md §5.
struct BalanceSicOptions {
  /// Accept highest-SIC batches first (Alg. 1 line 16, max(x_SIC)). When
  /// false, batches are accepted in FIFO arrival order (ablation).
  bool prefer_high_sic = true;
  /// Subtract in-buffer SIC mass from the disseminated q_SIC before the
  /// water-filling loop (§6 tuple shedder projection). When false, the loop
  /// starts from the disseminated value directly (ablation).
  bool project_local_shedding = true;
  /// Within a query, interleave accepted batches round-robin across the
  /// query's sources. With equal-rate sources all batches carry the same SIC
  /// value, so this is a tie-break refinement of max(x_SIC) that keeps
  /// multi-input operators (join, covariance) fed from every source — an
  /// all-CPU-no-memory window would emit nothing and lose its SIC mass.
  bool interleave_sources = true;
  /// Within a query, bucket candidate batches by the operator window their
  /// creation time falls into and complete one bucket before starting the
  /// next. Under extreme overload a query keeps less than one batch per
  /// window; spreading those few batches across many windows would leave
  /// every multi-input window half-fed and productive of nothing. Completing
  /// windows one at a time keeps the accepted SIC mass result-bearing.
  /// 0 disables grouping.
  SimDuration window_group = kSecond;
};

/// \brief Water-filling batch selection that equalises query result SIC.
///
/// Each iteration raises the query with the minimum projected SIC up to the
/// second-lowest level by accepting its batches, mirroring
/// selectTuplesToKeep(); the projected values play the role of updateSIC(Q).
class BalanceSicShedder : public Shedder {
 public:
  BalanceSicShedder(Rng rng, BalanceSicOptions options = {})
      : rng_(rng), options_(options) {}

  std::vector<size_t> SelectBatchesToKeep(const std::deque<Batch>& ib,
                                          const ShedContext& ctx) override;

  const char* name() const override { return "balance-sic"; }

 private:
  struct QueryState {
    QueryId query = kInvalidId;
    double projected_sic = 0.0;   // plays the role of q_SIC during the loop
    std::vector<size_t> batches;  // candidate batch indices, best-first
    size_t next = 0;              // cursor into `batches`

    bool Exhausted() const { return next >= batches.size(); }
  };

  Rng rng_;
  BalanceSicOptions options_;

  // Scratch reused across invocations: the selection runs every shedding
  // interval over the whole input buffer, and re-allocating its per-query
  // index vectors each time dominated profiles. The nested vectors keep
  // their capacity; *_used_ counters track the live prefix.
  std::vector<QueryState> states_;
  // Query -> states_ slot, generation-stamped so resetting between
  // invocations is O(1) (query ids are small dense ints).
  struct IndexSlot {
    uint64_t generation = 0;
    uint32_t slot = 0;
  };
  std::vector<IndexSlot> state_index_;
  uint64_t generation_ = 0;
  std::vector<std::pair<int64_t, std::vector<size_t>>> buckets_;
  size_t buckets_used_ = 0;
  std::vector<std::pair<SourceId, std::vector<size_t>>> per_source_;
  size_t per_source_used_ = 0;
  std::vector<std::pair<double, int64_t>> bucket_order_;
  std::vector<size_t> flattened_;
  // All states' projected SIC values, kept sorted during the acceptance
  // loop so the q'' target level is an upper_bound instead of a scan.
  std::vector<double> sorted_sic_;
};

}  // namespace themis

#endif  // THEMIS_SHEDDING_BALANCE_SIC_SHEDDER_H_
