// BALANCE-SIC fair shedding — Algorithm 1 of §5, with the practical
// refinements of §6:
//   * batch granularity (batches are the shedding unit),
//   * local SIC projection: the shedder starts from the disseminated result
//     SIC minus the SIC mass sitting in the input buffer ("assume everything
//     is discarded"), then adds batches back as it accepts them,
//   * max(x_SIC) selection: within a query, the highest-SIC batches are
//     accepted first so capacity buys the most valuable tuples.
#ifndef THEMIS_SHEDDING_BALANCE_SIC_SHEDDER_H_
#define THEMIS_SHEDDING_BALANCE_SIC_SHEDDER_H_

#include "common/rng.h"
#include "shedding/shedder.h"

namespace themis {

/// Tuning knobs; defaults reproduce the paper, the alternatives exist for the
/// ablation benches called out in DESIGN.md §5.
struct BalanceSicOptions {
  /// Accept highest-SIC batches first (Alg. 1 line 16, max(x_SIC)). When
  /// false, batches are accepted in FIFO arrival order (ablation).
  bool prefer_high_sic = true;
  /// Subtract in-buffer SIC mass from the disseminated q_SIC before the
  /// water-filling loop (§6 tuple shedder projection). When false, the loop
  /// starts from the disseminated value directly (ablation).
  bool project_local_shedding = true;
  /// Within a query, interleave accepted batches round-robin across the
  /// query's sources. With equal-rate sources all batches carry the same SIC
  /// value, so this is a tie-break refinement of max(x_SIC) that keeps
  /// multi-input operators (join, covariance) fed from every source — an
  /// all-CPU-no-memory window would emit nothing and lose its SIC mass.
  bool interleave_sources = true;
  /// Within a query, bucket candidate batches by the operator window their
  /// creation time falls into and complete one bucket before starting the
  /// next. Under extreme overload a query keeps less than one batch per
  /// window; spreading those few batches across many windows would leave
  /// every multi-input window half-fed and productive of nothing. Completing
  /// windows one at a time keeps the accepted SIC mass result-bearing.
  /// 0 disables grouping.
  SimDuration window_group = kSecond;
};

/// \brief Water-filling batch selection that equalises query result SIC.
///
/// Each iteration raises the query with the minimum projected SIC up to the
/// second-lowest level by accepting its batches, mirroring
/// selectTuplesToKeep(); the projected values play the role of updateSIC(Q).
class BalanceSicShedder : public Shedder {
 public:
  BalanceSicShedder(Rng rng, BalanceSicOptions options = {})
      : rng_(rng), options_(options) {}

  std::vector<size_t> SelectBatchesToKeep(const std::deque<Batch>& ib,
                                          const ShedContext& ctx) override;

  const char* name() const override { return "balance-sic"; }

 private:
  Rng rng_;
  BalanceSicOptions options_;
};

}  // namespace themis

#endif  // THEMIS_SHEDDING_BALANCE_SIC_SHEDDER_H_
