// Additional shedding baselines beyond the paper's random shedder, used by
// the extended comparison bench: tail-drop (drop newest), head-drop (drop
// oldest) — the de-facto policies of bounded queues — and a per-query
// proportional shedder that equalises keep *fractions* (rate fairness)
// rather than SIC (utility fairness).
#ifndef THEMIS_SHEDDING_BASELINE_SHEDDERS_H_
#define THEMIS_SHEDDING_BASELINE_SHEDDERS_H_

#include "shedding/shedder.h"

namespace themis {

/// \brief Keeps the oldest batches up to capacity (drops the newest).
///
/// Equivalent to a bounded FIFO queue that rejects arrivals when full.
class DropNewestShedder : public Shedder {
 public:
  std::vector<size_t> SelectBatchesToKeep(const std::deque<Batch>& ib,
                                          const ShedContext& ctx) override;
  const char* name() const override { return "drop-newest"; }
};

/// \brief Keeps the newest batches up to capacity (drops the oldest).
///
/// Models a queue that evicts stale data first — common in latency-bound
/// systems.
class DropOldestShedder : public Shedder {
 public:
  std::vector<size_t> SelectBatchesToKeep(const std::deque<Batch>& ib,
                                          const ShedContext& ctx) override;
  const char* name() const override { return "drop-oldest"; }
};

/// \brief Gives every query the same keep fraction of its buffered tuples.
///
/// Rate fairness: each query keeps `capacity / total` of its input,
/// regardless of how much result quality a tuple buys it. The contrast with
/// BALANCE-SIC isolates the value of the SIC metric (utility fairness) from
/// the value of per-query bookkeeping.
class ProportionalShedder : public Shedder {
 public:
  std::vector<size_t> SelectBatchesToKeep(const std::deque<Batch>& ib,
                                          const ShedContext& ctx) override;
  const char* name() const override { return "proportional"; }
};

}  // namespace themis

#endif  // THEMIS_SHEDDING_BASELINE_SHEDDERS_H_
