// Online cost model of §6: estimates the average simulated processing time
// per tuple from measurements between successive overload-detector
// invocations, smoothed with a moving average; the input-buffer threshold c
// is the number of tuples processable within one shedding interval.
#ifndef THEMIS_SHEDDING_COST_MODEL_H_
#define THEMIS_SHEDDING_COST_MODEL_H_

#include <cstddef>

#include "common/stats.h"
#include "common/time_types.h"

namespace themis {

/// \brief Estimates a node's per-tuple processing cost and capacity c.
class CostModel {
 public:
  /// \param window number of past intervals averaged over
  /// \param default_cost_us assumed per-tuple cost until first measurement
  explicit CostModel(size_t window = 8, double default_cost_us = 50.0)
      : avg_(window), default_cost_us_(default_cost_us) {}

  /// Records one measurement interval: `tuples` processed while the node was
  /// busy for `busy` simulated time. Intervals with no processed tuples are
  /// ignored (they carry no cost information).
  void RecordInterval(size_t tuples, SimDuration busy);

  /// Current per-tuple cost estimate in simulated microseconds.
  double PerTupleUs() const;

  /// Capacity c: tuples the node can process during `interval`.
  size_t EstimateCapacity(SimDuration interval) const;

  bool has_measurements() const { return avg_.size() > 0; }

 private:
  MovingAverage avg_;
  double default_cost_us_;
};

}  // namespace themis

#endif  // THEMIS_SHEDDING_COST_MODEL_H_
