// Random shedding baseline (Tatbul et al. [33]): discard arbitrary batches
// until the buffer fits the capacity. Used as the comparison baseline in
// Fig. 10 and the overhead experiment (§7.6).
#ifndef THEMIS_SHEDDING_RANDOM_SHEDDER_H_
#define THEMIS_SHEDDING_RANDOM_SHEDDER_H_

#include "common/rng.h"
#include "shedding/shedder.h"

namespace themis {

/// \brief Keeps a uniformly random subset of batches within capacity.
class RandomShedder : public Shedder {
 public:
  explicit RandomShedder(Rng rng) : rng_(rng) {}

  std::vector<size_t> SelectBatchesToKeep(const std::deque<Batch>& ib,
                                          const ShedContext& ctx) override;

  const char* name() const override { return "random"; }

 private:
  Rng rng_;
};

}  // namespace themis

#endif  // THEMIS_SHEDDING_RANDOM_SHEDDER_H_
