// Tuple shedder interface. A shedder looks at a node's input buffer and
// selects which batches to KEEP within the capacity c; everything else is
// discarded (Algorithm 1, shedTuples()).
#ifndef THEMIS_SHEDDING_SHEDDER_H_
#define THEMIS_SHEDDING_SHEDDER_H_

#include <deque>
#include <map>
#include <vector>

#include "common/time_types.h"
#include "runtime/batch.h"

namespace themis {

/// Per-invocation inputs to a shedder.
struct ShedContext {
  /// Capacity c: number of tuples the node can process this interval.
  size_t capacity_tuples = 0;
  /// Current simulated time.
  SimTime now = 0;
  /// Latest disseminated result SIC value per query hosted on this node
  /// (from the query coordinators, §5.2 updateSIC). May be null.
  const std::map<QueryId, double>* query_sic = nullptr;
  /// SIC mass this node accepted for processing per query over the trailing
  /// STW, indexed by QueryId (0.0 for queries without accepted mass).
  /// Lag-free local counterpart of `query_sic`: disseminated values trail
  /// reality by the end-to-end window-cascade latency, and balancing on
  /// them alone over-corrects (§6 projection heuristic). May be null.
  const std::vector<double>* local_accepted_sic = nullptr;
};

/// \brief Strategy deciding which input-buffer batches survive an overload.
class Shedder {
 public:
  virtual ~Shedder() = default;

  /// Returns the indices (into `ib`, ascending) of batches to keep. The total
  /// tuple count of kept batches must not exceed `ctx.capacity_tuples`.
  virtual std::vector<size_t> SelectBatchesToKeep(const std::deque<Batch>& ib,
                                                  const ShedContext& ctx) = 0;

  virtual const char* name() const = 0;
};

}  // namespace themis

#endif  // THEMIS_SHEDDING_SHEDDER_H_
