// Overload detector of §6: a node is overloaded when the number of tuples
// waiting in its input buffer exceeds the threshold c given by the cost
// model.
#ifndef THEMIS_SHEDDING_OVERLOAD_DETECTOR_H_
#define THEMIS_SHEDDING_OVERLOAD_DETECTOR_H_

#include <cstddef>

namespace themis {

/// \brief Compares input-buffer occupancy against the capacity threshold.
class OverloadDetector {
 public:
  /// \param headroom multiplier applied to c before the comparison; 1.0
  ///        reproduces the paper, >1 tolerates short bursts without shedding.
  explicit OverloadDetector(double headroom = 1.0) : headroom_(headroom) {}

  /// True when `ib_tuples` exceeds `capacity * headroom`.
  bool IsOverloaded(size_t ib_tuples, size_t capacity) const;

  double headroom() const { return headroom_; }

 private:
  double headroom_;
};

}  // namespace themis

#endif  // THEMIS_SHEDDING_OVERLOAD_DETECTOR_H_
