#include "shedding/overload_detector.h"

namespace themis {

bool OverloadDetector::IsOverloaded(size_t ib_tuples, size_t capacity) const {
  return static_cast<double>(ib_tuples) >
         static_cast<double>(capacity) * headroom_;
}

}  // namespace themis
