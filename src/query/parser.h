// Recursive-descent parser for the CQL-like language (grammar in lexer.h).
#ifndef THEMIS_QUERY_PARSER_H_
#define THEMIS_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace themis {

/// \brief Parses one SELECT statement; fails with a positioned message on
/// syntax errors.
Result<SelectStmt> ParseQuery(const std::string& input);

}  // namespace themis

#endif  // THEMIS_QUERY_PARSER_H_
