// Abstract syntax tree of the CQL-like language.
#ifndef THEMIS_QUERY_AST_H_
#define THEMIS_QUERY_AST_H_

#include <string>
#include <vector>

#include "common/time_types.h"

namespace themis {

/// A `stream.field` reference.
struct FieldRef {
  std::string stream;
  std::string field;
};

/// A stream in the FROM clause with its window: `Src[Range 1 sec]`.
struct StreamRef {
  std::string name;
  SimDuration range = kSecond;
};

/// One side of a comparison: either a field reference or a literal.
struct Operand {
  bool is_field = false;
  FieldRef field;
  double literal = 0.0;
};

/// Comparison operators of the language.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// `lhs op rhs` — WHERE/HAVING conditions are conjunctions of these.
struct Condition {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;

  /// True when both operands are field references (a join condition).
  bool IsJoin() const { return lhs.is_field && rhs.is_field; }
};

/// Select function of the projection: `Avg`, `Max`, `Min`, `Sum`, `Count`,
/// `Cov`, or `TopN` for any integer N (`Top5`, `Top10`, ...).
struct SelectFunc {
  std::string name;     ///< lower-cased function name ("avg", "top", ...)
  int top_k = 0;        ///< N for TopN functions
  std::vector<FieldRef> args;
};

/// A full parsed statement.
struct SelectStmt {
  SelectFunc func;
  std::vector<StreamRef> streams;
  std::vector<Condition> where;   ///< conjunction
  std::vector<Condition> having;  ///< conjunction
};

/// Evaluates `op` on doubles (shared by the compiler and tests).
bool EvalCompare(CompareOp op, double lhs, double rhs);

}  // namespace themis

#endif  // THEMIS_QUERY_AST_H_
