// Lexer for the CQL-like query syntax of Table 1 (Arasu et al. [8] style):
//   Select Avg(t.v) From Src[Range 1 sec]
//   Select Count(t.v) From Src[Range 1 sec] Having t.v >= 50
//   Select Cov(S1.value, S2.value) From S1[Range 1 sec], S2[Range 1 sec]
//   Select Top5(CPU.id, CPU.v) From CPU[Range 1 sec], Mem[Range 1 sec]
//     Where Mem.free >= 100000 and CPU.id = Mem.id
#ifndef THEMIS_QUERY_LEXER_H_
#define THEMIS_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace themis {

enum class TokenKind {
  kIdentifier,  ///< stream/field names and keywords (keywords resolved later)
  kNumber,      ///< integer or decimal literal
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kOperator,    ///< one of >=, <=, !=, =, >, <
  kEnd,
};

/// One lexed token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  size_t position = 0;

  bool Is(TokenKind k) const { return kind == k; }
  /// Case-insensitive keyword/identifier comparison.
  bool IsWord(const std::string& word) const;
};

/// \brief Splits `input` into tokens; fails on unknown characters.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace themis

#endif  // THEMIS_QUERY_LEXER_H_
