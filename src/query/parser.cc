#include "query/parser.h"

#include <cctype>

#include "query/lexer.h"

namespace themis {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Token cursor with positioned error helpers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }
  bool Done() const { return Peek().Is(TokenKind::kEnd); }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(Peek().position) +
                                   (Peek().text.empty()
                                        ? ""
                                        : " (near '" + Peek().text + "')"));
  }

  Status Expect(TokenKind kind, const std::string& what) {
    if (!Peek().Is(kind)) return Error("expected " + what);
    Next();
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<CompareOp> ParseOp(const std::string& text) {
  if (text == "=") return CompareOp::kEq;
  if (text == "!=") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  return Status::InvalidArgument("unknown comparison operator '" + text + "'");
}

// field_ref := ident '.' ident
Result<FieldRef> ParseFieldRef(Cursor* c) {
  if (!c->Peek().Is(TokenKind::kIdentifier)) {
    return c->Error("expected stream identifier");
  }
  FieldRef ref;
  ref.stream = c->Next().text;
  THEMIS_RETURN_NOT_OK(c->Expect(TokenKind::kDot, "'.'"));
  if (!c->Peek().Is(TokenKind::kIdentifier)) {
    return c->Error("expected field identifier");
  }
  ref.field = c->Next().text;
  return ref;
}

// operand := field_ref | number
Result<Operand> ParseOperand(Cursor* c) {
  Operand op;
  if (c->Peek().Is(TokenKind::kNumber)) {
    op.is_field = false;
    op.literal = c->Next().number;
    return op;
  }
  auto field = ParseFieldRef(c);
  if (!field.ok()) return field.status();
  op.is_field = true;
  op.field = *field;
  return op;
}

// condition_list := condition ('and' condition)*
Result<std::vector<Condition>> ParseConditions(Cursor* c) {
  std::vector<Condition> conditions;
  while (true) {
    Condition cond;
    auto lhs = ParseOperand(c);
    if (!lhs.ok()) return lhs.status();
    cond.lhs = *lhs;
    if (!c->Peek().Is(TokenKind::kOperator)) {
      return c->Error("expected comparison operator");
    }
    auto op = ParseOp(c->Next().text);
    if (!op.ok()) return op.status();
    cond.op = *op;
    auto rhs = ParseOperand(c);
    if (!rhs.ok()) return rhs.status();
    cond.rhs = *rhs;
    conditions.push_back(std::move(cond));
    if (c->Peek().IsWord("and")) {
      c->Next();
      continue;
    }
    break;
  }
  return conditions;
}

// window := '[' 'Range' number ('sec' | 'ms' | 'min') ']'
Result<SimDuration> ParseWindow(Cursor* c) {
  THEMIS_RETURN_NOT_OK(c->Expect(TokenKind::kLBracket, "'['"));
  if (!c->Peek().IsWord("range")) return c->Error("expected 'Range'");
  c->Next();
  if (!c->Peek().Is(TokenKind::kNumber)) {
    return c->Error("expected window size");
  }
  double amount = c->Next().number;
  SimDuration unit;
  if (c->Peek().IsWord("sec") || c->Peek().IsWord("s")) {
    unit = kSecond;
  } else if (c->Peek().IsWord("ms") || c->Peek().IsWord("msec")) {
    unit = kMillisecond;
  } else if (c->Peek().IsWord("min")) {
    unit = 60 * kSecond;
  } else {
    return c->Error("expected time unit (sec/ms/min)");
  }
  c->Next();
  THEMIS_RETURN_NOT_OK(c->Expect(TokenKind::kRBracket, "']'"));
  return static_cast<SimDuration>(amount * static_cast<double>(unit));
}

// func := ident '(' field_ref (',' field_ref)* ')'
Result<SelectFunc> ParseFunc(Cursor* c) {
  if (!c->Peek().Is(TokenKind::kIdentifier)) {
    return c->Error("expected select function");
  }
  SelectFunc func;
  std::string raw = Lower(c->Next().text);
  // TopN: "top" followed by digits.
  if (raw.rfind("top", 0) == 0 && raw.size() > 3 &&
      std::isdigit(static_cast<unsigned char>(raw[3]))) {
    func.name = "top";
    func.top_k = std::stoi(raw.substr(3));
  } else {
    func.name = raw;
  }
  THEMIS_RETURN_NOT_OK(c->Expect(TokenKind::kLParen, "'('"));
  while (true) {
    auto arg = ParseFieldRef(c);
    if (!arg.ok()) return arg.status();
    func.args.push_back(*arg);
    if (c->Peek().Is(TokenKind::kComma)) {
      c->Next();
      continue;
    }
    break;
  }
  THEMIS_RETURN_NOT_OK(c->Expect(TokenKind::kRParen, "')'"));
  return func;
}

}  // namespace

bool EvalCompare(CompareOp op, double lhs, double rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

Result<SelectStmt> ParseQuery(const std::string& input) {
  auto lexed = Lex(input);
  if (!lexed.ok()) return lexed.status();
  Cursor c(std::move(lexed).TakeValue());

  SelectStmt stmt;
  if (!c.Peek().IsWord("select")) return c.Error("expected 'Select'");
  c.Next();

  auto func = ParseFunc(&c);
  if (!func.ok()) return func.status();
  stmt.func = *func;

  if (!c.Peek().IsWord("from")) return c.Error("expected 'From'");
  c.Next();

  while (true) {
    if (!c.Peek().Is(TokenKind::kIdentifier)) {
      return c.Error("expected stream name");
    }
    StreamRef stream;
    stream.name = c.Next().text;
    auto window = ParseWindow(&c);
    if (!window.ok()) return window.status();
    stream.range = *window;
    stmt.streams.push_back(std::move(stream));
    if (c.Peek().Is(TokenKind::kComma)) {
      c.Next();
      continue;
    }
    break;
  }

  if (c.Peek().IsWord("where")) {
    c.Next();
    auto conditions = ParseConditions(&c);
    if (!conditions.ok()) return conditions.status();
    stmt.where = std::move(*conditions);
  }
  if (c.Peek().IsWord("having")) {
    c.Next();
    auto conditions = ParseConditions(&c);
    if (!conditions.ok()) return conditions.status();
    stmt.having = std::move(*conditions);
  }
  if (!c.Done()) return c.Error("unexpected trailing input");
  return stmt;
}

}  // namespace themis
