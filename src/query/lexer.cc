#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

namespace themis {

bool Token::IsWord(const std::string& word) const {
  if (kind != TokenKind::kIdentifier || text.size() != word.size()) {
    return false;
  }
  for (size_t i = 0; i < word.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, size_t pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdentifier, input.substr(i, j - i), start);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[j])) ||
              input[j] == '.')) {
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = input.substr(i, j - i);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.position = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, "[", start);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, "]", start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        continue;
      case '>':
      case '<':
      case '!': {
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kOperator, input.substr(i, 2), start);
          i += 2;
        } else if (c == '!') {
          return Status::InvalidArgument("stray '!' at position " +
                                         std::to_string(start));
        } else {
          push(TokenKind::kOperator, std::string(1, c), start);
          ++i;
        }
        continue;
      }
      case '=':
        push(TokenKind::kOperator, "=", start);
        ++i;
        continue;
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at position " +
                                       std::to_string(start));
    }
  }
  push(TokenKind::kEnd, "", input.size());
  return tokens;
}

}  // namespace themis
