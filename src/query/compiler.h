// Compiles parsed CQL-like statements into executable QueryGraphs.
//
// Supported shapes (the Table 1 workload surface):
//   * single-stream aggregates:  Avg/Max/Min/Sum/Count(S.f)
//     with optional WHERE (input filter) and HAVING (aggregate predicate;
//     for Count it selects the counted tuples, per the paper's example);
//   * two-stream covariance:     Cov(S1.f, S2.g);
//   * TopN over one stream:      Top5(S.id, S.v);
//   * TopN over an equi-join:    Top5(A.id, A.v) From A[...], B[...]
//                                Where B.x >= c and A.id = B.id.
//
// Compiled queries are single-fragment; deployment-time fragmentation is a
// placement concern the language intentionally does not encode (§3: users
// control fragmentation separately).
#ifndef THEMIS_QUERY_COMPILER_H_
#define THEMIS_QUERY_COMPILER_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "runtime/query_graph.h"
#include "runtime/schema.h"

namespace themis {

/// A compiled statement: the executable graph plus the mapping from stream
/// names to the SourceIds bound in the graph (the caller attaches source
/// models for these ids).
struct CompiledQuery {
  std::unique_ptr<QueryGraph> graph;
  std::map<std::string, SourceId> stream_sources;
};

/// \brief Resolves stream/field names against registered schemas and emits
/// QueryGraphs.
class QueryCompiler {
 public:
  /// Registers a stream `name` with its payload schema. Overwrites.
  void RegisterStream(const std::string& name, Schema schema);

  /// Compiles `stmt` into a graph with id `query_id`, allocating source ids
  /// from `*next_source`.
  Result<CompiledQuery> Compile(QueryId query_id, const SelectStmt& stmt,
                                SourceId* next_source) const;

  /// Convenience: parse + compile.
  Result<CompiledQuery> CompileString(QueryId query_id, const std::string& text,
                                      SourceId* next_source) const;

 private:
  Result<int> ResolveField(const FieldRef& ref) const;
  Result<const Schema*> StreamSchema(const std::string& name) const;

  std::map<std::string, Schema> streams_;
};

}  // namespace themis

#endif  // THEMIS_QUERY_COMPILER_H_
