#include "query/compiler.h"

#include <functional>
#include <vector>

#include "query/parser.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/covariance.h"
#include "runtime/operators/filter_map.h"
#include "runtime/operators/join.h"
#include "runtime/operators/receiver.h"
#include "runtime/operators/topk.h"

namespace themis {

namespace {

using TuplePredicate = std::function<bool(const Tuple&)>;

// Builds a conjunction predicate over `conditions`, all of which must be
// field-vs-literal comparisons on `stream` with indices resolved against
// `schema`.
Result<TuplePredicate> BuildPredicate(const std::vector<Condition>& conditions,
                                      const std::string& stream,
                                      const Schema& schema) {
  struct Resolved {
    int field;
    CompareOp op;
    double literal;
    bool literal_on_left;
  };
  std::vector<Resolved> resolved;
  for (const Condition& c : conditions) {
    const Operand* field_side = nullptr;
    const Operand* literal_side = nullptr;
    bool literal_on_left = false;
    if (c.lhs.is_field && !c.rhs.is_field) {
      field_side = &c.lhs;
      literal_side = &c.rhs;
    } else if (!c.lhs.is_field && c.rhs.is_field) {
      field_side = &c.rhs;
      literal_side = &c.lhs;
      literal_on_left = true;
    } else {
      return Status::InvalidArgument(
          "filter condition must compare a field with a literal");
    }
    if (field_side->field.stream != stream) {
      return Status::InvalidArgument("condition on unexpected stream '" +
                                     field_side->field.stream + "'");
    }
    auto idx = schema.IndexOf(field_side->field.field);
    if (!idx.ok()) return idx.status();
    resolved.push_back({*idx, c.op, literal_side->literal, literal_on_left});
  }
  return TuplePredicate([resolved](const Tuple& t) {
    for (const Resolved& r : resolved) {
      if (static_cast<size_t>(r.field) >= t.values.size()) return false;
      double v = AsDouble(t.values[r.field]);
      bool ok = r.literal_on_left ? EvalCompare(r.op, r.literal, v)
                                  : EvalCompare(r.op, v, r.literal);
      if (!ok) return false;
    }
    return true;
  });
}

// Splits WHERE conditions into per-stream filters and join conditions.
struct SplitConditions {
  std::map<std::string, std::vector<Condition>> filters;
  std::vector<Condition> joins;
};

SplitConditions SplitWhere(const std::vector<Condition>& where) {
  SplitConditions out;
  for (const Condition& c : where) {
    if (c.IsJoin()) {
      out.joins.push_back(c);
    } else {
      const FieldRef& f = c.lhs.is_field ? c.lhs.field : c.rhs.field;
      out.filters[f.stream].push_back(c);
    }
  }
  return out;
}

}  // namespace

void QueryCompiler::RegisterStream(const std::string& name, Schema schema) {
  streams_[name] = std::move(schema);
}

Result<const Schema*> QueryCompiler::StreamSchema(
    const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  return &it->second;
}

Result<int> QueryCompiler::ResolveField(const FieldRef& ref) const {
  auto schema = StreamSchema(ref.stream);
  if (!schema.ok()) return schema.status();
  auto idx = (*schema)->IndexOf(ref.field);
  if (!idx.ok()) {
    return Status::NotFound("stream '" + ref.stream + "' has no field '" +
                            ref.field + "'");
  }
  return *idx;
}

Result<CompiledQuery> QueryCompiler::Compile(QueryId query_id,
                                             const SelectStmt& stmt,
                                             SourceId* next_source) const {
  if (stmt.streams.empty()) {
    return Status::InvalidArgument("no streams in FROM clause");
  }
  for (const StreamRef& s : stmt.streams) {
    THEMIS_RETURN_NOT_OK(StreamSchema(s.name).status());
  }
  SplitConditions split = SplitWhere(stmt.where);

  QueryBuilder b(query_id, stmt.func.name);
  const FragmentId frag = 0;
  CompiledQuery compiled;

  // Per stream: receiver (+ optional WHERE filter), returning the id of the
  // last operator of that branch.
  auto build_branch = [&](const StreamRef& stream) -> Result<OperatorId> {
    OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), frag);
    SourceId src = (*next_source)++;
    b.BindSource(src, recv);
    compiled.stream_sources[stream.name] = src;
    OperatorId tail = recv;
    auto filter_it = split.filters.find(stream.name);
    if (filter_it != split.filters.end()) {
      auto schema = StreamSchema(stream.name);
      auto predicate =
          BuildPredicate(filter_it->second, stream.name, **schema);
      if (!predicate.ok()) return predicate.status();
      OperatorId filter = b.Add(
          std::make_unique<FilterOp>(std::move(*predicate),
                                     WindowSpec::TumblingTime(stream.range)),
          frag);
      b.Connect(tail, filter);
      tail = filter;
    }
    return tail;
  };

  const std::string& fn = stmt.func.name;
  OperatorId pre_output = kInvalidId;

  if (fn == "avg" || fn == "max" || fn == "min" || fn == "sum" ||
      fn == "count") {
    if (stmt.streams.size() != 1 || stmt.func.args.size() != 1) {
      return Status::InvalidArgument(fn + " takes one field of one stream");
    }
    const StreamRef& stream = stmt.streams[0];
    auto field = ResolveField(stmt.func.args[0]);
    if (!field.ok()) return field.status();

    AggregateKind kind = AggregateKind::kAvg;
    if (fn == "max") kind = AggregateKind::kMax;
    if (fn == "min") kind = AggregateKind::kMin;
    if (fn == "sum") kind = AggregateKind::kSum;
    if (fn == "count") kind = AggregateKind::kCount;

    TuplePredicate having;
    if (!stmt.having.empty()) {
      auto schema = StreamSchema(stream.name);
      auto predicate = BuildPredicate(stmt.having, stream.name, **schema);
      if (!predicate.ok()) return predicate.status();
      having = std::move(*predicate);
    }
    auto branch = build_branch(stream);
    if (!branch.ok()) return branch.status();
    OperatorId agg = b.Add(
        std::make_unique<AggregateOp>(kind, *field,
                                      WindowSpec::TumblingTime(stream.range),
                                      std::move(having)),
        frag);
    b.Connect(*branch, agg);
    pre_output = agg;
  } else if (fn == "cov") {
    if (stmt.streams.size() != 2 || stmt.func.args.size() != 2) {
      return Status::InvalidArgument("cov takes two fields of two streams");
    }
    auto left_field = ResolveField(stmt.func.args[0]);
    auto right_field = ResolveField(stmt.func.args[1]);
    if (!left_field.ok()) return left_field.status();
    if (!right_field.ok()) return right_field.status();
    auto left = build_branch(stmt.streams[0]);
    auto right = build_branch(stmt.streams[1]);
    if (!left.ok()) return left.status();
    if (!right.ok()) return right.status();
    OperatorId cov = b.Add(
        std::make_unique<CovarianceOp>(
            *left_field, *right_field,
            WindowSpec::TumblingTime(stmt.streams[0].range)),
        frag);
    b.Connect(*left, cov, 0).Connect(*right, cov, 1);
    pre_output = cov;
  } else if (fn == "top") {
    if (stmt.func.args.size() != 2) {
      return Status::InvalidArgument(
          "topN takes (key field, ranking field) of the first stream");
    }
    const StreamRef& primary = stmt.streams[0];
    if (stmt.func.args[0].stream != primary.name ||
        stmt.func.args[1].stream != primary.name) {
      return Status::InvalidArgument(
          "topN arguments must reference the first FROM stream");
    }
    auto key_field = ResolveField(stmt.func.args[0]);
    auto value_field = ResolveField(stmt.func.args[1]);
    if (!key_field.ok()) return key_field.status();
    if (!value_field.ok()) return value_field.status();

    auto primary_branch = build_branch(primary);
    if (!primary_branch.ok()) return primary_branch.status();

    OperatorId rank_input = *primary_branch;
    int rank_key = *key_field;
    int rank_value = *value_field;

    if (stmt.streams.size() == 2) {
      // Equi-join with the second stream on the single join condition.
      if (split.joins.size() != 1 ||
          split.joins[0].op != CompareOp::kEq) {
        return Status::InvalidArgument(
            "two-stream topN needs exactly one A.f = B.g join condition");
      }
      const Condition& join_cond = split.joins[0];
      const FieldRef& l = join_cond.lhs.field;
      const FieldRef& r = join_cond.rhs.field;
      const FieldRef& primary_key = l.stream == primary.name ? l : r;
      const FieldRef& secondary_key = l.stream == primary.name ? r : l;
      if (primary_key.stream != primary.name ||
          secondary_key.stream != stmt.streams[1].name) {
        return Status::InvalidArgument(
            "join condition must relate the two FROM streams");
      }
      auto left_key = ResolveField(primary_key);
      auto right_key = ResolveField(secondary_key);
      if (!left_key.ok()) return left_key.status();
      if (!right_key.ok()) return right_key.status();

      auto secondary_branch = build_branch(stmt.streams[1]);
      if (!secondary_branch.ok()) return secondary_branch.status();

      OperatorId join = b.Add(
          std::make_unique<HashJoinOp>(
              *left_key, *right_key,
              WindowSpec::TumblingTime(primary.range)),
          frag);
      b.Connect(*primary_branch, join, 0).Connect(*secondary_branch, join, 1);
      rank_input = join;

      // Join output layout: (key, left fields minus key, right fields
      // minus key). Remap the ranking field accordingly.
      if (rank_value == *left_key) {
        rank_value = 0;
      } else {
        rank_value = 1 + (rank_value < *left_key ? rank_value : rank_value - 1);
      }
      rank_key = 0;
    }

    OperatorId topk = b.Add(
        std::make_unique<TopKOp>(static_cast<size_t>(stmt.func.top_k),
                                 rank_value, rank_key,
                                 WindowSpec::TumblingTime(primary.range)),
        frag);
    b.Connect(rank_input, topk);
    pre_output = topk;
  } else {
    return Status::Unimplemented("unknown select function '" + fn + "'");
  }

  OperatorId out = b.Add(std::make_unique<OutputOp>(), frag);
  b.Connect(pre_output, out).SetRoot(out);
  auto graph = b.Build();
  if (!graph.ok()) return graph.status();
  compiled.graph = std::move(graph).TakeValue();
  return compiled;
}

Result<CompiledQuery> QueryCompiler::CompileString(
    QueryId query_id, const std::string& text, SourceId* next_source) const {
  auto stmt = ParseQuery(text);
  if (!stmt.ok()) return stmt.status();
  return Compile(query_id, *stmt, next_source);
}

}  // namespace themis
