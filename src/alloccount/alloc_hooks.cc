// Opt-in counting allocator: global operator new/delete overrides that feed
// the AllocCounter atomics. Lives in its own library (themis::alloccount) so
// only binaries that link it — and reference ForceLinkAllocCounter(), which
// anchors this archive member — pay the (one relaxed atomic increment)
// bookkeeping cost per allocation.
#include <cstdlib>
#include <new>

#include "common/alloc_counter.h"

namespace themis {

void ForceLinkAllocCounter() {
  internal::g_alloc_counting_active.store(true, std::memory_order_relaxed);
}

namespace {

void* CountedAlloc(std::size_t size) {
  internal::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  internal::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  internal::g_free_count.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace
}  // namespace themis

void* operator new(std::size_t size) { return themis::CountedAlloc(size); }
void* operator new[](std::size_t size) { return themis::CountedAlloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return themis::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return themis::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { themis::CountedFree(p); }
void operator delete[](void* p) noexcept { themis::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { themis::CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept {
  themis::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  themis::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  themis::CountedFree(p);
}
