#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace themis {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// Sink registration: guarded by a mutex rather than atomics so the
// (sink, ctx) pair always swaps as a unit. Emit copies the pair out under
// the lock and calls it unlocked, so a sink may itself log.
std::mutex g_sink_mu;
Logging::Sink g_sink = nullptr;
void* g_sink_ctx = nullptr;

void StderrSink(void* /*ctx*/, LogLevel level, const char* file, int line,
                const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(level), file, line,
               msg.c_str());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logging::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level));
}

LogLevel Logging::GetLevel() { return static_cast<LogLevel>(g_level.load()); }

void Logging::SetSink(Sink sink, void* ctx) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = sink;
  g_sink_ctx = ctx;
}

void Logging::Emit(LogLevel level, const char* file, int line,
                   const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  Sink sink;
  void* ctx;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    sink = g_sink;
    ctx = g_sink_ctx;
  }
  if (sink == nullptr) {
    sink = StderrSink;
    ctx = nullptr;
  }
  sink(ctx, level, file, line, msg);
}

ScopedLogCapture::ScopedLogCapture(LogLevel capture_level)
    : saved_level_(Logging::GetLevel()) {
  if (static_cast<int>(capture_level) < static_cast<int>(saved_level_)) {
    Logging::SetLevel(capture_level);
  }
  Logging::SetSink(&ScopedLogCapture::CaptureSink, this);
}

ScopedLogCapture::~ScopedLogCapture() {
  Logging::SetSink(nullptr, nullptr);
  Logging::SetLevel(saved_level_);
}

std::vector<CapturedLog> ScopedLogCapture::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

bool ScopedLogCapture::Contains(const std::string& substr) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const CapturedLog& line : captured_) {
    if (line.msg.find(substr) != std::string::npos) return true;
  }
  return false;
}

void ScopedLogCapture::CaptureSink(void* ctx, LogLevel level,
                                   const char* /*file*/, int /*line*/,
                                   const std::string& msg) {
  auto* self = static_cast<ScopedLogCapture*>(ctx);
  std::lock_guard<std::mutex> lock(self->mu_);
  self->captured_.push_back(CapturedLog{level, msg});
}

}  // namespace themis
