#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace themis {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logging::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level));
}

LogLevel Logging::GetLevel() { return static_cast<LogLevel>(g_level.load()); }

void Logging::Emit(LogLevel level, const char* file, int line,
                   const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               msg.c_str());
}

}  // namespace themis
