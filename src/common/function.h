// Move-only callable wrapper for the event-driven core.
//
// std::function requires copyable callables, which forced batch hand-offs
// through shared_ptr (one control-block allocation per simulated network
// message). UniqueFunction accepts move-only captures — a Batch moves
// through the scheduler — and stores callables up to kInlineSize bytes
// inline, so scheduling an event does not allocate.
#ifndef THEMIS_COMMON_FUNCTION_H_
#define THEMIS_COMMON_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace themis {

/// \brief Move-only `void()` function with small-buffer storage.
class UniqueFunction {
 public:
  /// Inline storage size; sized for a lambda capturing a node pointer plus a
  /// moved Batch (the hottest event payload in the simulator).
  static constexpr size_t kInlineSize = 64;

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    } else {
      heap_ = new Fn(std::forward<F>(f));
    }
    vtable_ = VTableFor<Fn>();
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  void operator()() { vtable_->invoke(Target()); }

  explicit operator bool() const { return vtable_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void* target);
    /// Moves the target from `from_fn`'s storage into `to_fn` (inline
    /// callables only; heap callables transfer by pointer).
    void (*relocate)(UniqueFunction* to_fn, UniqueFunction* from_fn);
    void (*destroy)(void* target);
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool kFitsInline =
      sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static void InvokeImpl(void* target) {
    (*static_cast<Fn*>(target))();
  }

  template <typename Fn>
  static void RelocateImpl(UniqueFunction* to_fn, UniqueFunction* from_fn) {
    if constexpr (kFitsInline<Fn>) {
      Fn* src = static_cast<Fn*>(static_cast<void*>(from_fn->storage_));
      ::new (static_cast<void*>(to_fn->storage_)) Fn(std::move(*src));
      src->~Fn();
    } else {
      to_fn->heap_ = from_fn->heap_;
      from_fn->heap_ = nullptr;
    }
  }

  template <typename Fn>
  static void DestroyImpl(void* target) {
    if constexpr (kFitsInline<Fn>) {
      static_cast<Fn*>(target)->~Fn();
    } else {
      delete static_cast<Fn*>(target);
    }
  }

  template <typename Fn>
  static const VTable* VTableFor() {
    static constexpr VTable vt = {&InvokeImpl<Fn>, &RelocateImpl<Fn>,
                                  &DestroyImpl<Fn>, kFitsInline<Fn>};
    return &vt;
  }

  void* Target() {
    return vtable_ != nullptr && vtable_->inline_stored
               ? static_cast<void*>(storage_)
               : heap_;
  }

  void Reset() {
    if (vtable_ == nullptr) return;
    vtable_->destroy(Target());
    vtable_ = nullptr;
    heap_ = nullptr;
  }

  void MoveFrom(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) vtable_->relocate(this, &other);
    other.vtable_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  void* heap_ = nullptr;
  const VTable* vtable_ = nullptr;
};

}  // namespace themis

#endif  // THEMIS_COMMON_FUNCTION_H_
