// Process-wide heap-allocation counters, fed by the OPT-IN counting
// allocator in src/alloccount. By default the counters stay at zero and
// `active()` is false; a binary opts in by linking `themis::alloccount` and
// calling ForceLinkAllocCounter() (which pulls the operator new/delete
// overrides into the link and arms the counters).
//
// The bench harness uses this to report allocations per run, and the
// data-plane regression test uses it to pin steady-state allocation counts.
#ifndef THEMIS_COMMON_ALLOC_COUNTER_H_
#define THEMIS_COMMON_ALLOC_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace themis {

namespace internal {
// Written by the alloccount hooks; read through AllocCounter.
extern std::atomic<uint64_t> g_alloc_count;
extern std::atomic<uint64_t> g_free_count;
extern std::atomic<uint64_t> g_alloc_bytes;
extern std::atomic<bool> g_alloc_counting_active;
}  // namespace internal

/// \brief Read-side view of the counting allocator.
class AllocCounter {
 public:
  /// True when the counting allocator is linked in and armed.
  static bool active() {
    return internal::g_alloc_counting_active.load(std::memory_order_relaxed);
  }
  /// Heap allocations (operator new calls) since process start.
  static uint64_t allocations() {
    return internal::g_alloc_count.load(std::memory_order_relaxed);
  }
  /// Heap frees (operator delete calls) since process start.
  static uint64_t frees() {
    return internal::g_free_count.load(std::memory_order_relaxed);
  }
  /// Total bytes requested from operator new since process start.
  static uint64_t bytes_allocated() {
    return internal::g_alloc_bytes.load(std::memory_order_relaxed);
  }
};

/// Defined in src/alloccount (themis::alloccount). Calling it references the
/// translation unit holding the global operator new/delete overrides, which
/// forces the archive member into the link and arms the counters. Without
/// this call (or without linking themis::alloccount) allocation behaviour is
/// completely unchanged.
void ForceLinkAllocCounter();

}  // namespace themis

#endif  // THEMIS_COMMON_ALLOC_COUNTER_H_
