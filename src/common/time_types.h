// Simulated-time vocabulary. All timestamps in the library are simulated
// microseconds; helpers below keep unit conversions explicit at call sites.
#ifndef THEMIS_COMMON_TIME_TYPES_H_
#define THEMIS_COMMON_TIME_TYPES_H_

#include <cstdint>

namespace themis {

/// Simulated time, in microseconds since simulation start.
using SimTime = int64_t;
/// A duration in simulated microseconds.
using SimDuration = int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Millis(int64_t ms) { return ms * kMillisecond; }
constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace themis

#endif  // THEMIS_COMMON_TIME_TYPES_H_
