// Minimal leveled logger with a swappable sink. Level switching and sink
// installation are thread-safe; the default sink writes to stderr.
#ifndef THEMIS_COMMON_LOGGING_H_
#define THEMIS_COMMON_LOGGING_H_

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace themis {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4
};

/// Name of a level as emitted in log lines ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

/// Process-wide logging configuration.
class Logging {
 public:
  /// Receives every emitted line (already level-filtered). `ctx` is the
  /// pointer registered alongside the sink.
  using Sink = void (*)(void* ctx, LogLevel level, const char* file,
                        int line, const std::string& msg);

  /// Sets the minimum level emitted. Default: kWarn (quiet tools).
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Replaces the output sink; `sink == nullptr` restores stderr. Tests
  /// capture and assert on decision logs through this (ScopedLogCapture).
  static void SetSink(Sink sink, void* ctx);

  /// Emits one line (implementation detail of the THEMIS_LOG macro).
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& msg);
};

/// \brief Captured log line (level + message; file/line dropped so tests
/// don't pin source positions).
struct CapturedLog {
  LogLevel level;
  std::string msg;
};

/// \brief RAII sink that captures every line at or above `capture_level`
/// into a vector, restoring the previous stderr sink and level on exit.
/// Lowers the global level to `capture_level` for its lifetime.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(LogLevel capture_level = LogLevel::kInfo);
  ~ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  std::vector<CapturedLog> lines() const;
  /// True when any captured message contains `substr`.
  bool Contains(const std::string& substr) const;

 private:
  static void CaptureSink(void* ctx, LogLevel level, const char* file,
                          int line, const std::string& msg);

  LogLevel saved_level_;
  mutable std::mutex mu_;
  std::vector<CapturedLog> captured_;
};

namespace internal {

/// Stream-collecting helper so call sites can use `<<`.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logging::Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace themis

#define THEMIS_LOG(level)                                                \
  if (static_cast<int>(::themis::LogLevel::k##level) >=                  \
      static_cast<int>(::themis::Logging::GetLevel()))                   \
  ::themis::internal::LogMessage(::themis::LogLevel::k##level, __FILE__, \
                                 __LINE__)

/// Invariant check that survives NDEBUG builds; aborts with a message.
#define THEMIS_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::themis::Logging::Emit(::themis::LogLevel::kError, __FILE__, __LINE__, \
                              "CHECK failed: " #cond);                       \
      ::abort();                                                             \
    }                                                                        \
  } while (false)

#endif  // THEMIS_COMMON_LOGGING_H_
