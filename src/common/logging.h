// Minimal leveled logger. Not thread-aware beyond atomic level switching; the
// simulator is single-threaded by design, so this is sufficient.
#ifndef THEMIS_COMMON_LOGGING_H_
#define THEMIS_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

namespace themis {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4
};

/// Process-wide logging configuration.
class Logging {
 public:
  /// Sets the minimum level emitted to stderr. Default: kWarn (quiet tools).
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Emits one line (implementation detail of the THEMIS_LOG macro).
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& msg);
};

namespace internal {

/// Stream-collecting helper so call sites can use `<<`.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logging::Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace themis

#define THEMIS_LOG(level)                                                \
  if (static_cast<int>(::themis::LogLevel::k##level) >=                  \
      static_cast<int>(::themis::Logging::GetLevel()))                   \
  ::themis::internal::LogMessage(::themis::LogLevel::k##level, __FILE__, \
                                 __LINE__)

/// Invariant check that survives NDEBUG builds; aborts with a message.
#define THEMIS_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::themis::Logging::Emit(::themis::LogLevel::kError, __FILE__, __LINE__, \
                              "CHECK failed: " #cond);                       \
      ::abort();                                                             \
    }                                                                        \
  } while (false)

#endif  // THEMIS_COMMON_LOGGING_H_
