#include "common/alloc_counter.h"

namespace themis {
namespace internal {

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_free_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<bool> g_alloc_counting_active{false};

}  // namespace internal
}  // namespace themis
