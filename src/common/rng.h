// Deterministic random number generation. Every experiment object takes a
// seed so that figures are reproducible bit-for-bit; independent components
// derive child seeds with Fork() to avoid correlated streams.
#ifndef THEMIS_COMMON_RNG_H_
#define THEMIS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace themis {

/// \brief Seedable RNG wrapper around a 64-bit Mersenne Twister.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed), seed_(seed) {}

  // The distribution helpers are inline: sources draw one or more values per
  // generated tuple, making these the hottest calls in a simulation run.
  // Distributions are constructed per call on purpose — their internal state
  // (e.g. the Box-Muller spare value) must not persist, or the historical
  // draw sequences (and every regenerated figure) would change.

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential with the given mean (= 1/lambda).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  /// Zipf-distributed rank in [0, n) with skew parameter s (s=0 -> uniform).
  int64_t Zipf(int64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child RNG; deterministic given the parent state.
  Rng Fork();

  uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace themis

#endif  // THEMIS_COMMON_RNG_H_
