#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace themis {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double Covariance(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs), my = Mean(ys);
  double acc = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) acc += (xs[i] - mx) * (ys[i] - my);
  return acc / static_cast<double>(xs.size() - 1);
}

double Ewma::Update(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

double MovingAverage::Update(double x) {
  window_.push_back(x);
  sum_ += x;
  if (window_.size() > capacity_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
  return value();
}

double MovingAverage::value() const {
  if (window_.empty()) return 0.0;
  return sum_ / static_cast<double>(window_.size());
}

void MovingAverage::Reset() {
  window_.clear();
  sum_ = 0.0;
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_));
}

void RunningStats::Reset() {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

}  // namespace themis
