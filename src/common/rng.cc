#include "common/rng.h"

#include <cmath>

namespace themis {

double Rng::NextDouble() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::Exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool Rng::Bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

int64_t Rng::Zipf(int64_t n, double s) {
  // Inverse-CDF sampling over the (small) rank domain; n is the number of
  // nodes or queries in our experiments, so an O(n) scan is fine.
  if (n <= 1) return 0;
  double norm = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    norm += 1.0 / std::pow(static_cast<double>(k), s);
  }
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  return Rng(child_seed);
}

}  // namespace themis
