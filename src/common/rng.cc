#include "common/rng.h"

#include <cmath>

namespace themis {

int64_t Rng::Zipf(int64_t n, double s) {
  // Inverse-CDF sampling over the (small) rank domain; n is the number of
  // nodes or queries in our experiments, so an O(n) scan is fine.
  if (n <= 1) return 0;
  double norm = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    norm += 1.0 / std::pow(static_cast<double>(k), s);
  }
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  return Rng(child_seed);
}

}  // namespace themis
