// Status / Result<T> error handling, in the style of RocksDB/Arrow: functions
// that can fail return a Status (or Result<T> carrying a value), never throw
// across public API boundaries.
#ifndef THEMIS_COMMON_STATUS_H_
#define THEMIS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace themis {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// \brief Outcome of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation). Non-OK statuses
/// carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A Status or a value of type T.
///
/// Mirrors arrow::Result: `Result<int> r = F(); if (!r.ok()) ...; use *r;`
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from non-OK status (failure). Asserts the status is not OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; undefined behaviour if !ok().
  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out; undefined behaviour if !ok().
  T TakeValue() && { return std::move(*value_); }

  /// Returns the value or `alt` when in error state.
  T ValueOr(T alt) const { return ok() ? *value_ : std::move(alt); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace themis

/// Propagates a non-OK Status to the caller (RocksDB idiom).
#define THEMIS_RETURN_NOT_OK(expr)           \
  do {                                       \
    ::themis::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // THEMIS_COMMON_STATUS_H_
