#include "common/status.h"

namespace themis {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace themis
