// Small statistics helpers shared by the cost model, the metrics module and
// the benchmark reporters.
#ifndef THEMIS_COMMON_STATS_H_
#define THEMIS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace themis {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for inputs of size < 2.
double StdDev(const std::vector<double>& xs);

/// Sample covariance of two equally sized series; 0 when sizes differ or < 2.
double Covariance(const std::vector<double>& xs, const std::vector<double>& ys);

/// \brief Exponentially weighted moving average.
///
/// Used by the online cost model (§6 of the paper) to smooth per-tuple
/// processing-time estimates.
class Ewma {
 public:
  /// \param alpha weight of the newest observation in (0, 1].
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  /// Folds in an observation and returns the updated average.
  double Update(double x);

  double value() const { return value_; }
  bool has_value() const { return initialized_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// \brief Sliding-window mean over the most recent `capacity` observations.
class MovingAverage {
 public:
  explicit MovingAverage(size_t capacity = 16) : capacity_(capacity) {}

  double Update(double x);
  double value() const;
  size_t size() const { return window_.size(); }
  void Reset();

 private:
  size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

/// \brief Streaming min/max/mean/std accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population standard deviation.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void Reset();

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace themis

#endif  // THEMIS_COMMON_STATS_H_
