#include "solver/fit_baseline.h"

#include "solver/simplex.h"

namespace themis {

Result<FitSolution> SolveFit(const std::vector<FitQuery>& queries,
                             const std::vector<double>& node_capacity) {
  size_t n = queries.size();
  size_t d = node_capacity.size();
  if (n == 0) return Status::InvalidArgument("no queries");

  LinearProgram lp;
  lp.objective.resize(n);
  for (size_t q = 0; q < n; ++q) {
    if (queries[q].cost_per_node.size() != d) {
      return Status::InvalidArgument("cost_per_node size mismatch");
    }
    lp.objective[q] = queries[q].weight * queries[q].input_rate;
  }

  // Node capacity constraints.
  for (size_t node = 0; node < d; ++node) {
    std::vector<double> row(n, 0.0);
    for (size_t q = 0; q < n; ++q) {
      row[q] = queries[q].input_rate * queries[q].cost_per_node[node];
    }
    lp.a.push_back(std::move(row));
    lp.b.push_back(node_capacity[node]);
  }
  // x_q <= 1.
  for (size_t q = 0; q < n; ++q) {
    std::vector<double> row(n, 0.0);
    row[q] = 1.0;
    lp.a.push_back(std::move(row));
    lp.b.push_back(1.0);
  }

  auto solved = SolveLp(lp);
  if (!solved.ok()) return solved.status();

  FitSolution out;
  out.keep_fraction = solved->x;
  out.total_weighted_throughput = solved->objective;
  return out;
}

}  // namespace themis
