#include "solver/simplex.h"

#include <cmath>
#include <limits>

namespace themis {

namespace {
constexpr double kEps = 1e-9;
}

Result<LpSolution> SolveLp(const LinearProgram& lp) {
  size_t n = lp.objective.size();
  size_t m = lp.a.size();
  if (n == 0) return Status::InvalidArgument("empty objective");
  if (lp.b.size() != m) return Status::InvalidArgument("b size mismatch");
  for (const auto& row : lp.a) {
    if (row.size() != n) return Status::InvalidArgument("A row size mismatch");
  }
  for (double rhs : lp.b) {
    if (rhs < 0.0) {
      return Status::InvalidArgument(
          "negative rhs requires phase-1 (unsupported)");
    }
  }

  // Tableau with slack variables: columns [x_0..x_{n-1}, s_0..s_{m-1}, rhs].
  size_t cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) t[i][j] = lp.a[i][j];
    t[i][n + i] = 1.0;
    t[i][cols - 1] = lp.b[i];
  }
  for (size_t j = 0; j < n; ++j) t[m][j] = -lp.objective[j];

  std::vector<size_t> basis(m);
  for (size_t i = 0; i < m; ++i) basis[i] = n + i;

  // Bland's rule: entering = lowest-index column with a negative reduced
  // cost; leaving = lowest-index row among min-ratio ties. Guarantees
  // termination.
  const size_t max_iters = 20000 * (m + n);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    size_t pivot_col = cols;  // sentinel
    for (size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == cols) break;  // optimal

    size_t pivot_row = m;  // sentinel
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        double ratio = t[i][cols - 1] / t[i][pivot_col];
        if (ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps && pivot_row < m &&
             basis[i] < basis[pivot_row])) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    if (pivot_row == m) return Status::Internal("LP is unbounded");

    // Pivot.
    double pv = t[pivot_row][pivot_col];
    for (size_t j = 0; j < cols; ++j) t[pivot_row][j] /= pv;
    for (size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      double factor = t[i][pivot_col];
      if (std::abs(factor) < kEps) continue;
      for (size_t j = 0; j < cols; ++j) t[i][j] -= factor * t[pivot_row][j];
    }
    basis[pivot_row] = pivot_col;
  }

  LpSolution sol;
  sol.x.assign(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = t[i][cols - 1];
  }
  sol.objective = t[m][cols - 1];
  return sol;
}

}  // namespace themis
