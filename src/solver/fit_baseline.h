// FIT-style baseline (Tatbul, Cetintemel, Zdonik [34]): centralised load
// shedding that maximises the total weighted query throughput subject to
// per-node capacity constraints. §7.5 solves it for a fixed deployment and
// reports the resulting per-query input fractions, showing that sum
// maximisation starves most queries (unfair).
#ifndef THEMIS_SOLVER_FIT_BASELINE_H_
#define THEMIS_SOLVER_FIT_BASELINE_H_

#include <vector>

#include "common/status.h"

namespace themis {

/// One query in the FIT formulation.
struct FitQuery {
  /// Utility weight of a unit of throughput (paper comparison: all 1).
  double weight = 1.0;
  /// Input rate (tuples/sec) arriving at the query.
  double input_rate = 1.0;
  /// Per-node cost: cpu seconds consumed per input tuple on node d
  /// (0 when the query has no fragment there), size = #nodes.
  std::vector<double> cost_per_node;
};

/// FIT allocation: fraction x_q in [0, 1] of each query's input kept.
struct FitSolution {
  std::vector<double> keep_fraction;
  double total_weighted_throughput = 0.0;
};

/// \brief Solves   max sum_q w_q r_q x_q
///                 s.t. sum_q r_q c_{qd} x_q <= capacity_d  for every node d,
///                      0 <= x_q <= 1.
Result<FitSolution> SolveFit(const std::vector<FitQuery>& queries,
                             const std::vector<double>& node_capacity);

}  // namespace themis

#endif  // THEMIS_SOLVER_FIT_BASELINE_H_
