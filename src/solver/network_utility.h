// Zhao et al. [44]-style baseline: centralised network utility maximisation
//   max sum_q U_q(r_q x_q)   with concave U (here log),
//   s.t. per-node capacity constraints, 0 <= x_q <= 1.
// Solved by projected gradient ascent on the kept fractions with a dual
// penalty on violated capacities (standard NUM machinery); converges to the
// proportional-fair allocation the paper compares against in §7.5.
#ifndef THEMIS_SOLVER_NETWORK_UTILITY_H_
#define THEMIS_SOLVER_NETWORK_UTILITY_H_

#include <vector>

#include "common/status.h"
#include "solver/fit_baseline.h"

namespace themis {

/// Solver knobs; defaults converge for the §7.5 problem sizes.
struct NumOptions {
  int iterations = 20000;
  double step = 1e-3;          ///< primal step size
  double dual_step = 1e-2;     ///< dual (price) step size
  double min_fraction = 1e-4;  ///< keeps log() bounded
};

/// Allocation and achieved utilities.
struct NumSolution {
  std::vector<double> keep_fraction;
  /// Normalised log-output utilities (the quantity whose Jain index §7.5
  /// reports for [44]): log(r_q x_q) shifted/scaled to [0, 1].
  std::vector<double> normalized_utility;
  double total_utility = 0.0;
};

/// \brief Solves the log-utility allocation over the same inputs as SolveFit.
Result<NumSolution> SolveLogUtility(const std::vector<FitQuery>& queries,
                                    const std::vector<double>& node_capacity,
                                    const NumOptions& options = {});

}  // namespace themis

#endif  // THEMIS_SOLVER_NETWORK_UTILITY_H_
