// Dense two-phase simplex LP solver. Stands in for GLPK in the §7.5
// comparison against FIT [34] (DESIGN.md §2). Solves
//   maximise    c^T x
//   subject to  A x <= b,  x >= 0
// with Bland's rule (no cycling). Problem sizes in the reproduction are tiny
// (hundreds of variables), so no sparsity or numerics sophistication is
// needed.
#ifndef THEMIS_SOLVER_SIMPLEX_H_
#define THEMIS_SOLVER_SIMPLEX_H_

#include <vector>

#include "common/status.h"

namespace themis {

/// A linear program in standard inequality form.
struct LinearProgram {
  /// Objective coefficients (maximisation), size n.
  std::vector<double> objective;
  /// Constraint matrix, m rows of size n.
  std::vector<std::vector<double>> a;
  /// Right-hand sides, size m. Must be >= 0 (all our capacity constraints
  /// are; a general phase-1 is therefore unnecessary).
  std::vector<double> b;
};

/// Solver outcome.
struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
};

/// \brief Solves `lp`; fails on malformed input or unboundedness.
Result<LpSolution> SolveLp(const LinearProgram& lp);

}  // namespace themis

#endif  // THEMIS_SOLVER_SIMPLEX_H_
