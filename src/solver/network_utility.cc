#include "solver/network_utility.h"

#include <algorithm>
#include <cmath>

namespace themis {

Result<NumSolution> SolveLogUtility(const std::vector<FitQuery>& queries,
                                    const std::vector<double>& node_capacity,
                                    const NumOptions& options) {
  size_t n = queries.size();
  size_t d = node_capacity.size();
  if (n == 0) return Status::InvalidArgument("no queries");
  for (const FitQuery& q : queries) {
    if (q.cost_per_node.size() != d) {
      return Status::InvalidArgument("cost_per_node size mismatch");
    }
    if (q.input_rate <= 0.0) {
      return Status::InvalidArgument("non-positive input rate");
    }
  }

  std::vector<double> x(n, 1.0);        // primal: kept fraction
  std::vector<double> price(d, 0.0);    // dual: per-node congestion price

  for (int it = 0; it < options.iterations; ++it) {
    // Primal step: dU/dx = w/x minus the priced capacity usage.
    for (size_t q = 0; q < n; ++q) {
      double grad = queries[q].weight / std::max(x[q], options.min_fraction);
      for (size_t node = 0; node < d; ++node) {
        grad -= price[node] * queries[q].input_rate *
                queries[q].cost_per_node[node];
      }
      x[q] = std::clamp(x[q] + options.step * grad, options.min_fraction, 1.0);
    }
    // Dual step: raise prices on violated nodes, decay otherwise.
    for (size_t node = 0; node < d; ++node) {
      double load = 0.0;
      for (size_t q = 0; q < n; ++q) {
        load += x[q] * queries[q].input_rate * queries[q].cost_per_node[node];
      }
      price[node] = std::max(
          0.0, price[node] + options.dual_step * (load - node_capacity[node]));
    }
  }

  NumSolution out;
  out.keep_fraction = x;
  std::vector<double> log_outputs(n);
  double lo = 0.0, hi = 0.0;
  for (size_t q = 0; q < n; ++q) {
    log_outputs[q] = std::log(std::max(queries[q].input_rate * x[q], 1e-12));
    out.total_utility += queries[q].weight * log_outputs[q];
    if (q == 0) {
      lo = hi = log_outputs[q];
    } else {
      lo = std::min(lo, log_outputs[q]);
      hi = std::max(hi, log_outputs[q]);
    }
  }
  // Normalise to [0, 1] as §7.5 does before computing Jain's index; a
  // degenerate all-equal allocation maps to all-ones.
  out.normalized_utility.resize(n);
  double span = hi - lo;
  for (size_t q = 0; q < n; ++q) {
    out.normalized_utility[q] =
        span < 1e-12 ? 1.0 : 0.05 + 0.95 * (log_outputs[q] - lo) / span;
  }
  return out;
}

}  // namespace themis
