// themis_parsim: conservative parallel discrete-event engine.
//
// The federation's nodes are partitioned across `shards` worker threads,
// each advancing its own EventQueue. Shards synchronize in barrier epochs
// whose width is the lookahead — the minimum cross-shard link latency
// (Fsps computes it from Network topology and node placement): any message
// sent during an epoch is delivered strictly after the epoch's end, so each
// shard can run one epoch without observing the others.
//
// Cross-shard Network::Send calls enqueue into per-(from, to) shard-pair
// inbox rings (each written by exactly one worker, lock-free). At the epoch
// barrier every destination shard merges its incoming rings in the
// deterministic order (deliver_time, from_shard, ring_seq) and schedules
// them onto its queue, so results are bit-identical run-to-run at any shard
// count — and byte-identical to the SequentialEngine at shards = 1, where
// the epoch machinery is bypassed entirely.
//
// Determinism argument, inductively over epochs: each shard's intra-epoch
// execution is a deterministic function of its queue contents; the rings it
// emits are therefore deterministic; and the merge order is a pure function
// of ring contents. Wall-clock interleaving of the workers never orders
// events, only the simulated-time epochs do.
#ifndef THEMIS_PARSIM_PARALLEL_ENGINE_H_
#define THEMIS_PARSIM_PARALLEL_ENGINE_H_

#include <memory>
#include <vector>

#include "common/function.h"
#include "common/time_types.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"

namespace themis {

/// \brief Sharded barrier-epoch engine (see file comment).
class ParallelEngine : public Engine, public CrossShardSink {
 public:
  /// \param shards number of worker shards (>= 1)
  explicit ParallelEngine(int shards);
  ~ParallelEngine() override;

  int num_shards() const override { return static_cast<int>(queues_.size()); }
  EventQueue* queue(int shard) override { return queues_[shard].get(); }
  CrossShardSink* sink() override { return this; }

  /// Sets the epoch width. Must be > 0 when cross-shard traffic exists (a
  /// zero-latency cross-shard link admits no conservative parallel
  /// schedule); <= 0 declares "no cross-shard traffic" and runs each shard
  /// to the target in one stretch.
  void SetLookahead(SimDuration lookahead) override {
    lookahead_ = lookahead;
    if (telemetry::Telemetry* tel = telemetry::Get()) {
      tel->metrics()
          .GetGauge("infra.parsim.lookahead_us")
          ->Set(static_cast<double>(lookahead));
    }
  }
  SimDuration lookahead() const override { return lookahead_; }

  /// Elastic mode (see Engine::EnableElastic): the shard map may change
  /// between runs, so EnqueueRemote accepts stale re-forwards even when the
  /// current topology has no cross-shard link (lookahead <= 0) — they merge
  /// at the end of the stretch and run in the next stretch.
  void EnableElastic() override { elastic_ = true; }

  void RunUntil(SimTime t) override;
  SimTime now() const override { return now_; }
  uint64_t executed() const override;

  // CrossShardSink — called from the worker thread running `from_shard`.
  void EnqueueRemote(int from_shard, int to_shard, SimTime deliver_time,
                     UniqueFunction cb) override;

 private:
  /// One buffered cross-shard delivery. Ring order encodes the send order
  /// within (epoch, from_shard), which the merge sort preserves for equal
  /// delivery times (stable sort over the time key).
  struct Pending {
    SimTime time;
    UniqueFunction cb;
  };

  /// A shard-pair inbox ring, padded so rings written by different workers
  /// never share a cache line.
  struct alignas(64) Ring {
    std::vector<Pending> items;
  };

  /// Per-destination merge buffer, padded for the same reason: all
  /// destinations merge concurrently during the barrier's merge phase.
  struct alignas(64) MergeScratch {
    std::vector<Pending> items;
  };

  /// Merges rings_[* -> shard] into queues_[shard] in deterministic order.
  void MergeInbox(int shard);

  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<Ring> rings_;          // [from * shards + to]
  std::vector<MergeScratch> scratch_;
  SimDuration lookahead_ = -1;
  SimTime now_ = 0;
  bool elastic_ = false;
};

}  // namespace themis

#endif  // THEMIS_PARSIM_PARALLEL_ENGINE_H_
