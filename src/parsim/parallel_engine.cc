#include "parsim/parallel_engine.h"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace themis {

namespace {

// Shard the calling thread is currently executing, for pinning assertions:
// EnqueueRemote must only ever be reached from the sending shard's worker.
thread_local int tls_running_shard = -1;

}  // namespace

ParallelEngine::ParallelEngine(int shards) {
  THEMIS_CHECK(shards >= 1);
  queues_.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    queues_.push_back(std::make_unique<EventQueue>());
  }
  rings_.resize(static_cast<size_t>(shards) * shards);
  scratch_.resize(shards);
}

ParallelEngine::~ParallelEngine() = default;

uint64_t ParallelEngine::executed() const {
  uint64_t total = 0;
  for (const auto& q : queues_) total += q->executed();
  return total;
}

void ParallelEngine::EnqueueRemote(int from_shard, int to_shard,
                                   SimTime deliver_time, UniqueFunction cb) {
  THEMIS_CHECK(tls_running_shard == from_shard);
  // Cross-shard traffic requires a positive epoch width: with lookahead <= 0
  // a shard runs straight to the target and a remote delivery inside that
  // stretch would be missed. Fsps derives the lookahead from the topology
  // whenever any node pair crosses shards, so this firing means a
  // zero-latency cross-shard link (or a bypassed Fsps::Start). Exception:
  // on an elastic engine a stale re-forward (a delivery whose destination
  // migrated while it was in flight) may arrive after a re-balance removed
  // the last cross-shard link; it merges at the end of the current stretch
  // and runs in the next one — late, but deterministic.
  THEMIS_CHECK(lookahead_ > 0 || elastic_);
  rings_[static_cast<size_t>(from_shard) * queues_.size() + to_shard]
      .items.push_back({deliver_time, std::move(cb)});
}

void ParallelEngine::MergeInbox(int shard) {
  const size_t shards = queues_.size();
  std::vector<Pending>& merged = scratch_[shard].items;
  merged.clear();
  for (size_t from = 0; from < shards; ++from) {
    std::vector<Pending>& ring = rings_[from * shards + shard].items;
    for (Pending& p : ring) merged.push_back(std::move(p));
    ring.clear();  // keeps capacity: rings are allocation-free in steady state
  }
  if (telemetry::Telemetry* tel = telemetry::Get()) {
    tel->metrics()
        .GetHistogram("infra.parsim.inbox_depth")
        ->Observe(static_cast<double>(merged.size()));
  }
  // Rings were appended in (from_shard, ring_seq) order; the stable sort
  // over delivery time alone therefore realises the documented total order
  // (deliver_time, from_shard, ring_seq) without materialising the key.
  std::stable_sort(
      merged.begin(), merged.end(),
      [](const Pending& a, const Pending& b) { return a.time < b.time; });
  EventQueue* q = queues_[shard].get();
  for (Pending& p : merged) q->Schedule(p.time, std::move(p.cb));
  merged.clear();
}

void ParallelEngine::RunUntil(SimTime t) {
  telemetry::TraceScope run_span("parsim.run_until");
  const int shards = num_shards();
  if (t <= now_) {
    // RunFor(0) semantics: run events at exactly the current clock, shard
    // by shard on the driver thread (deterministic), then merge once so
    // any cross-shard sends are queued for the next run.
    for (int s = 0; s < shards; ++s) {
      tls_running_shard = s;
      queues_[s]->RunUntil(std::max(queues_[s]->now(), t));
    }
    for (int s = 0; s < shards; ++s) MergeInbox(s);
    tls_running_shard = -1;
    return;
  }
  if (shards == 1) {
    // One shard: no cross-shard traffic possible, no epoch machinery — this
    // is the byte-identity path with SequentialEngine.
    queues_[0]->RunUntil(t);
    now_ = t;
    return;
  }

  std::barrier barrier(shards);
  const SimTime start = now_;
  const SimDuration lookahead = lookahead_;
  // Epoch metrics: handles resolved once per run, shared by all workers
  // (per-lane slots make the writes contention- and merge-order-free).
  telemetry::Telemetry* tel = telemetry::Get();
  telemetry::Counter* epochs_c = nullptr;
  telemetry::Histogram* busy_h = nullptr;
  telemetry::Histogram* wait_h = nullptr;
  if (tel != nullptr) {
    epochs_c = tel->metrics().GetCounter("infra.parsim.epochs");
    busy_h = tel->metrics().GetHistogram("infra.parsim.epoch_busy_us");
    wait_h = tel->metrics().GetHistogram("infra.parsim.epoch_wait_us");
  }
  auto worker = [this, start, t, lookahead, &barrier, tel, epochs_c, busy_h,
                 wait_h](int shard) {
    tls_running_shard = shard;
    telemetry::SetLane(shard);
    EventQueue* q = queues_[shard].get();
    // Zero-width boundary epoch first: events pending at exactly `start`
    // (scheduled by the driver between runs, or clamped to the clock) run
    // and merge before any shard moves past `start`. Afterwards every epoch
    // covers the half-open range (cur, next]: an event executing at time
    // x > cur sends deliveries to >= x + lookahead > next, so they land in
    // a strictly later epoch — and a delivery at exactly `next + lookahead`
    // still merges before the epoch that ends there runs. Without the
    // boundary epoch, a send at exactly `start` with latency == lookahead
    // would deliver at the first epoch's own end, after the destination
    // already ran past it.
    SimTime cur = start;
    bool boundary = lookahead > 0;
    while (boundary || cur < t) {
      SimTime next;
      if (boundary) {
        next = cur;
        boundary = false;
      } else if (lookahead > 0) {
        next = std::min<SimTime>(t, cur + lookahead);
      } else {
        next = t;
      }
      uint64_t t0 = tel != nullptr ? tel->tracer().NowMicros() : 0;
      q->RunUntil(next);
      if (tel != nullptr) {
        uint64_t t1 = tel->tracer().NowMicros();
        busy_h->Observe(static_cast<double>(t1 - t0));
        t0 = t1;
      }
      barrier.arrive_and_wait();  // all sends of this epoch are buffered
      if (tel != nullptr) {
        wait_h->Observe(
            static_cast<double>(tel->tracer().NowMicros() - t0));
        epochs_c->Add(1);
      }
      MergeInbox(shard);
      barrier.arrive_and_wait();  // merges done before anyone writes rings
      cur = next;
    }
    tls_running_shard = -1;
    telemetry::SetLane(0);
  };

  std::vector<std::thread> threads;
  threads.reserve(shards - 1);
  for (int s = 1; s < shards; ++s) {
    threads.emplace_back(worker, s);
  }
  worker(0);  // the driver thread runs shard 0
  for (std::thread& th : threads) th.join();
  now_ = t;
}

}  // namespace themis
