#include "sic/sic.h"

#include <algorithm>

namespace themis {

double SourceTupleSic(double tuples_per_stw, size_t num_sources) {
  if (tuples_per_stw <= 0.0 || num_sources == 0) return 0.0;
  return 1.0 / (tuples_per_stw * static_cast<double>(num_sources));
}

double ClampQuerySic(double q_sic) { return std::clamp(q_sic, 0.0, 1.0); }

}  // namespace themis
