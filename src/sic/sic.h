// Source information content (SIC) helpers — the Eq. (1), (2) and (4)
// arithmetic of §4. Eq. (3) propagation lives in runtime/operator.h because
// it is applied inside operator pane processing.
#ifndef THEMIS_SIC_SIC_H_
#define THEMIS_SIC_SIC_H_

#include <cstddef>

namespace themis {

/// \brief Eq. (1): SIC value of one source tuple.
///
/// `tuples_per_stw` is |T_s^S|, the (estimated) number of tuples the source
/// emits during one source time window; `num_sources` is |S|, the number of
/// sources feeding the query. With perfect processing the SIC values of all
/// source tuples of a query sum to 1 over one STW.
///
/// \return the per-tuple SIC value, or 0 when either argument is 0.
double SourceTupleSic(double tuples_per_stw, size_t num_sources);

/// Clamps a query result SIC value into its theoretical [0, 1] range. Rate
/// estimation error can push the raw sum slightly past 1.
double ClampQuerySic(double q_sic);

}  // namespace themis

#endif  // THEMIS_SIC_SIC_H_
