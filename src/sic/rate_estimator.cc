#include "sic/rate_estimator.h"

#include <algorithm>

namespace themis {

void RateEstimator::Grow() {
  size_t cap = ring_.empty() ? 64 : ring_.size() * 2;
  std::vector<Sample> next(cap);
  for (size_t i = 0; i < size_; ++i) next[i] = At(i);
  ring_ = std::move(next);
  head_ = 0;
}

void RateEstimator::Observe(SimTime now, size_t count) {
  if (first_observation_ < 0 ||
      (last_observation_ >= 0 && now - last_observation_ >= stw_)) {
    // Cold start, or an idle gap at least one window wide (every prior
    // sample is stale): restart the observation epoch so the warm-up
    // extrapolation applies to the post-gap rate.
    first_observation_ = now;
  }
  last_observation_ = now;
  if (size_ == ring_.size()) Grow();
  ring_[(head_ + size_) & (ring_.size() - 1)] = {now, count};
  ++size_;
  in_window_ += count;
  Prune(now);
}

void RateEstimator::Prune(SimTime now) {
  SimTime horizon = now - stw_;
  while (size_ > 0 && ring_[head_].time <= horizon) {
    in_window_ -= ring_[head_].count;
    head_ = (head_ + 1) & (ring_.size() - 1);
    --size_;
  }
}

double RateEstimator::TuplesPerStw(SimTime now) const {
  if (size_ == 0 || first_observation_ < 0) return 0.0;
  SimTime elapsed = now - first_observation_;
  // Count arrivals currently inside (now - stw, now]. The common caller
  // (node ingress) asks at the same `now` it just observed at, so the whole
  // ring is in-window and the maintained sum answers in O(1); the scan only
  // runs when `now` moved past stale samples. Counts are small integers, so
  // the integer sum and the double sum are bit-identical.
  SimTime horizon = now - stw_;
  double count;
  if (ring_[head_].time > horizon) {
    count = static_cast<double>(in_window_);
  } else {
    count = 0.0;
    for (size_t i = size_; i > 0; --i) {
      const Sample& s = At(i - 1);
      if (s.time <= horizon) break;
      count += static_cast<double>(s.count);
    }
  }
  if (elapsed <= 0) {
    // Single instantaneous observation: the best available estimate is the
    // batch itself scaled to a full window, which we cannot compute without a
    // rate; report the raw count (first slide will correct it).
    return count;
  }
  if (elapsed < stw_) {
    // Clamped warm-up extrapolation: real inter-batch spacings (>= 100 ms in
    // every workload model) are far above the floor, so steady operation is
    // untouched; only pathological near-coincident samples are bounded.
    SimTime span = std::max(elapsed, kMinExtrapolationElapsed);
    return count * static_cast<double>(stw_) / static_cast<double>(span);
  }
  return count;
}

}  // namespace themis
