#include "sic/rate_estimator.h"

#include <algorithm>

namespace themis {

void RateEstimator::Observe(SimTime now, size_t count) {
  if (first_observation_ < 0) first_observation_ = now;
  samples_.push_back({now, count});
  in_window_ += count;
  Prune(now);
}

void RateEstimator::Prune(SimTime now) {
  SimTime horizon = now - stw_;
  while (!samples_.empty() && samples_.front().time <= horizon) {
    in_window_ -= samples_.front().count;
    samples_.pop_front();
  }
}

double RateEstimator::TuplesPerStw(SimTime now) const {
  if (samples_.empty() || first_observation_ < 0) return 0.0;
  SimTime elapsed = now - first_observation_;
  // Count arrivals currently inside (now - stw, now].
  SimTime horizon = now - stw_;
  double count = 0.0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->time <= horizon) break;
    count += static_cast<double>(it->count);
  }
  if (elapsed <= 0) {
    // Single instantaneous observation: the best available estimate is the
    // batch itself scaled to a full window, which we cannot compute without a
    // rate; report the raw count (first slide will correct it).
    return count;
  }
  if (elapsed < stw_) {
    return count * static_cast<double>(stw_) / static_cast<double>(elapsed);
  }
  return count;
}

}  // namespace themis
