#include "sic/stw_tracker.h"

#include "sic/sic.h"

namespace themis {

void StwTracker::AddResultSic(SimTime now, double sic) {
  entries_.push_back({now, sic});
  sum_ += sic;
  Prune(now);
}

void StwTracker::Prune(SimTime now) {
  SimTime horizon = now - stw_;
  while (!entries_.empty() && entries_.front().time <= horizon) {
    sum_ -= entries_.front().sic;
    entries_.pop_front();
  }
}

double StwTracker::QuerySic(SimTime now) {
  Prune(now);
  return ClampQuerySic(sum_);
}

double StwTracker::RawSum(SimTime now) {
  Prune(now);
  return sum_;
}

}  // namespace themis
