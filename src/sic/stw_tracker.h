// Sliding-STW accounting of a query's result SIC (Eq. 4). Used by the query
// coordinator to compute the q_SIC values it disseminates, and by experiment
// reporters.
#ifndef THEMIS_SIC_STW_TRACKER_H_
#define THEMIS_SIC_STW_TRACKER_H_

#include <deque>

#include "common/time_types.h"

namespace themis {

/// \brief Accumulates result-tuple SIC contributions over a sliding STW.
///
/// `QuerySic(now)` returns Eq. (4) evaluated over the window (now-STW, now]:
/// 1 means perfect processing (all source tuples of the last STW contributed
/// to results), 0 means everything was shed.
class StwTracker {
 public:
  explicit StwTracker(SimDuration stw) : stw_(stw) {}

  /// Records SIC mass `sic` arriving at the query result at time `now`.
  void AddResultSic(SimTime now, double sic);

  /// Eq. (4) over the trailing STW, clamped to [0, 1].
  double QuerySic(SimTime now);

  /// Raw (unclamped) sum over the trailing STW; useful for calibration tests.
  double RawSum(SimTime now);

  SimDuration stw() const { return stw_; }

 private:
  void Prune(SimTime now);

  struct Entry {
    SimTime time;
    double sic;
  };

  SimDuration stw_;
  std::deque<Entry> entries_;
  double sum_ = 0.0;
};

}  // namespace themis

#endif  // THEMIS_SIC_STW_TRACKER_H_
