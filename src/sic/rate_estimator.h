// Online estimation of |T_s^S|, the number of tuples a source generates per
// source time window. Relaxes Assumption 2 of §5.1: rates are unknown and
// time-varying, so THEMIS counts arrivals over the sliding STW (§6, "SIC
// maintenance").
#ifndef THEMIS_SIC_RATE_ESTIMATOR_H_
#define THEMIS_SIC_RATE_ESTIMATOR_H_

#include <cstddef>
#include <vector>

#include "common/time_types.h"

namespace themis {

/// \brief Sliding-window arrival counter for one source.
///
/// Samples live in a power-of-two ring buffer: one estimator runs per
/// (query, source) pair and is fed on every batch arrival, so the window
/// maintenance must neither allocate nor chase deque blocks in steady
/// state.
class RateEstimator {
 public:
  /// \param stw source time window duration the estimate is expressed in
  explicit RateEstimator(SimDuration stw) : stw_(stw) {}

  /// Records `count` tuples arriving at simulated time `now`.
  void Observe(SimTime now, size_t count);

  /// Estimated tuples per STW as of `now`.
  ///
  /// While fewer than one full STW of history exists, the observed count is
  /// extrapolated linearly so early estimates are unbiased for constant-rate
  /// sources. The extrapolation denominator is clamped to
  /// `kMinExtrapolationElapsed` so two near-coincident samples cannot blow
  /// the estimate up by orders of magnitude.
  double TuplesPerStw(SimTime now) const;

  /// Extrapolation floor: an observation span shorter than this is treated
  /// as this long (1 ms), bounding the cold-start scale factor at
  /// stw / 1 ms instead of stw / 1 us.
  static constexpr SimDuration kMinExtrapolationElapsed = Millis(1);

  SimDuration stw() const { return stw_; }

 private:
  struct Sample {
    SimTime time;
    size_t count;
  };

  void Prune(SimTime now);
  void Grow();
  const Sample& At(size_t i) const {  // i-th oldest in-window sample
    return ring_[(head_ + i) & (ring_.size() - 1)];
  }

  SimDuration stw_;
  std::vector<Sample> ring_;  // power-of-two capacity
  size_t head_ = 0;           // index of the oldest sample
  size_t size_ = 0;           // live samples
  size_t in_window_ = 0;
  // Start of the current observation epoch. Reset after an idle gap of at
  // least one STW (a source pausing and rejoining, a node recovering): the
  // stale epoch start would otherwise pin `elapsed >= stw` and disable the
  // warm-up extrapolation forever, so the first estimates after the gap
  // would be one raw batch per window — skewing the first overload
  // decision after a rejoin.
  SimTime first_observation_ = -1;
  SimTime last_observation_ = -1;
};

}  // namespace themis

#endif  // THEMIS_SIC_RATE_ESTIMATOR_H_
